"""The policy plane: the registry, the `Policy` protocol, and the zoo.

Two generations of controller live here:

**The policy zoo** (new) — decorator-registered strategies driven by a
generic :class:`~repro.core.daemon.ControllerDaemon`.  Every policy
implements the :class:`Policy` protocol (``bind`` / ``make_monitor`` /
``on_init`` / ``pre_observe`` / ``decide``), plans
:class:`~repro.core.allocator.Layout` objects, and actuates them
through :meth:`ControllerDaemon.apply_layout` (which delegates mask
programming to :meth:`ControlPlane.apply_layout`).  Registered today:

* ``iat`` — :class:`IATPolicy`, the paper's six-step FSM controller
  (all of Sec. IV), bit-identical to the pre-refactor monolith;
* ``static`` / ``core-only`` / ``io-iso`` — the Sec. VI-B comparison
  policies, adapted into the registry via thin wrappers;
* ``ioca`` — :class:`IOCAPolicy`, an IOCA-style I/O-aware manager that
  sizes the DDIO partition from DDIO/PCIe pressure (arXiv:2007.04552);
* ``lfoc`` — :class:`LFOCPolicy`, an LFOC-style fairness-clustering
  policy driven by per-tenant slowdowns (arXiv:2402.07578).

Use :func:`create_policy(name, params)` to construct one from a plain
params dict (the ``repro compare`` harness does exactly this), and
:func:`available_policies` to enumerate the registry.

**Legacy engine-driven controllers** (below) — the original Sec. VI-B
comparison classes, still usable directly as engine controllers:

* **StaticPolicy** (baseline) — one allocation at start-up, never
  revisited.  Figs. 12-14 randomize the initial placement ("the LLC
  ways allocation ... randomly shuffled"), hence ``shuffle_seed``: a
  cache-hungry tenant may or may not land on the DDIO ways, producing
  the wide min-max whiskers of the baseline bars.
* **CoreOnlyPolicy** — dynamic, miss-driven way allocation *without*
  I/O awareness (the paper emulates this by "disabling I/O Demand state
  and LLC shuffling").  It happily treats the DDIO ways as free space,
  which is the Latent Contender problem in action.
* **IOIsoPolicy** — Core-only plus a hard exclusion of the DDIO ways
  from the core pool ([14, 69]'s approach).  When demand exceeds the
  shrunken pool, groups are clamped against its top and *share* ways
  ("the PC containers have to share 7-2=5 ways").

Neither reactive policy ever touches the DDIO mask; they re-read its
width every interval so external changes (the Fig. 10 script raises
DDIO from two to four ways at t=15 s) are respected.
"""

from __future__ import annotations

import inspect
from dataclasses import asdict, dataclass, fields as dataclass_fields, \
    replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..cache.cat import ways_to_mask
from ..obs.metrics import REGISTRY
from ..obs.tracer import enabled_tracer
from ..tenants.tenant import Priority, TenantSet
from .allocator import Layout, WayAllocator, plan_layout
from .control import ControlPlane
from .fsm import INITIAL_STATE, State, next_state
from .monitor import (ChangeKind, ChangeReport, ProfMonitor, SlowdownTracker,
                      SystemSample, rel_change)
from .params import IATParams
from .shuffler import placement_order

if TYPE_CHECKING:
    from .daemon import ControllerDaemon


# ======================================================================
# The Policy protocol and registry
# ======================================================================

@dataclass(frozen=True)
class PolicyState:
    """State label for policies without a paper FSM.

    Duck-types :class:`~repro.core.fsm.State` where the daemon and the
    trace stream need a ``.value`` string.
    """

    value: str


@dataclass(frozen=True)
class Decision:
    """What a policy decided in one interval.

    The daemon folds this into the iteration log and Fig. 15 timing
    split: ``stable`` iterations polled and did nothing (cheap),
    unstable ones re-planned or re-programmed masks.
    """

    kind: ChangeKind
    action: str
    stable: bool


@runtime_checkable
class Policy(Protocol):
    """The decision layer of the controller plane.

    A policy never talks to the engine or programs masks directly: it
    observes through the monitor its :meth:`make_monitor` created,
    decides in :meth:`decide`, and actuates by planning a
    :class:`~repro.core.allocator.Layout` and handing it to
    ``self.daemon.apply_layout(...)``.
    """

    #: Registry name (set by :func:`register_policy`).
    policy_name: str
    #: Sleep interval the daemon runs this policy at.
    interval_s: float

    def bind(self, daemon: "ControllerDaemon") -> None: ...

    def make_monitor(self) -> "ProfMonitor | None": ...

    def on_init(self, now: float) -> None: ...

    def pre_observe(self, now: float) -> None: ...

    def decide(self, now: float,
               sample: "SystemSample | None") -> Decision: ...


class PolicyBase:
    """Shared plumbing for registered policies.

    Subclasses set ``params_cls`` when they accept an
    :class:`IATParams`-style dataclass; :meth:`from_params` then lets a
    flat dict address both constructor keywords and dataclass fields
    (``create_policy("iat", {"interval_s": 0.2, "shuffle": False})``).
    """

    policy_name = "?"
    summary = ""
    #: Optional params dataclass whose fields are accepted as flat keys
    #: in :meth:`from_params` and listed among the policy's tunables.
    params_cls: "type | None" = None
    interval_s = 1.0
    state: "State | PolicyState" = PolicyState("active")
    allocator: "WayAllocator | None" = None

    def bind(self, daemon: "ControllerDaemon") -> None:
        self.daemon = daemon
        self.control = daemon.control

    @classmethod
    def from_params(cls, params: "dict | None" = None) -> "PolicyBase":
        params = dict(params or {})
        pcls = cls.params_cls
        if pcls is not None:
            known = {f.name for f in dataclass_fields(pcls)}
            accepted = set(inspect.signature(cls.__init__).parameters)
            overrides = {key: params.pop(key) for key in list(params)
                         if key in known and key not in accepted}
            if overrides:
                base = params.get("params") or pcls()
                params["params"] = replace(base, **overrides)
        return cls(**params)

    def make_monitor(self) -> "ProfMonitor | None":
        return None

    def on_init(self, now: float) -> None:
        """Plan and apply the initial allocation (tenants just changed)."""

    def pre_observe(self, now: float) -> None:
        """Observe out-of-band state before the monitor poll."""

    def decide(self, now: float, sample: "SystemSample | None") -> Decision:
        return Decision(ChangeKind.POLICY, "none", stable=True)


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry: the class plus presentation metadata."""

    name: str
    cls: type
    summary: str

    def tunables(self) -> "list[tuple[str, str]]":
        """(param, default) pairs a params dict may set — constructor
        keywords plus the fields of ``params_cls`` (if any)."""
        out: "list[tuple[str, str]]" = []
        sig = inspect.signature(self.cls.__init__)
        for pname, param in sig.parameters.items():
            if pname in ("self", "params") or param.kind in (
                    param.VAR_POSITIONAL, param.VAR_KEYWORD):
                continue
            default = ("required" if param.default is param.empty
                       else repr(param.default))
            out.append((pname, default))
        pcls = getattr(self.cls, "params_cls", None)
        if pcls is not None:
            seen = {name for name, _ in out}
            for field_ in dataclass_fields(pcls):
                if field_.name not in seen:
                    out.append((field_.name, repr(field_.default)))
        return out


_POLICIES: "dict[str, PolicyInfo]" = {}


def register_policy(name: str, summary: str):
    """Class decorator adding a policy to the registry under ``name``."""
    def wrap(cls: type) -> type:
        existing = _POLICIES.get(name)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"policy name {name!r} already registered by "
                f"{existing.cls.__qualname__}")
        cls.policy_name = name
        cls.summary = summary
        _POLICIES[name] = PolicyInfo(name=name, cls=cls, summary=summary)
        return cls
    return wrap


def available_policies() -> "list[PolicyInfo]":
    """Registry entries, sorted by name."""
    return [_POLICIES[name] for name in sorted(_POLICIES)]


def get_policy(name: str) -> PolicyInfo:
    """Look up one registry entry by name (KeyError lists the rest)."""
    try:
        return _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown policy {name!r} (registered: {known})") \
            from None


def create_policy(name: str, params: "dict | None" = None):
    """Construct a registered policy from a plain params dict."""
    return get_policy(name).cls.from_params(params)


def group_floor(tenants: TenantSet, group: str) -> int:
    """The way count a group may never be shrunk below."""
    members = tenants.group_members(group)
    return max(max(1, t.initial_ways) for t in members)


# ======================================================================
# IAT: the paper's policy (Sec. IV), registry edition
# ======================================================================

@register_policy("iat", "The paper's I/O-aware FSM controller: DDIO way "
                        "sizing, tenant way grants, and way shuffling")
class IATPolicy(PolicyBase):
    """The paper's six-step decision logic behind the Policy protocol.

    Moved verbatim from the pre-refactor ``IATDaemon`` monolith; the
    equivalence suite pins the iteration history (and the pqos call and
    trace event order underneath it) field-for-field against goldens
    captured before the split.
    """

    params_cls = IATParams

    def __init__(self, params: "IATParams | None" = None, *,
                 manage_ddio: bool = True,
                 manage_tenant_ways: bool = True,
                 shuffle: bool = True) -> None:
        self.params = params or IATParams()
        self.manage_ddio = manage_ddio
        self.manage_tenant_ways = manage_tenant_ways
        self.shuffle = shuffle
        self.interval_s = self.params.interval_s
        self.state = INITIAL_STATE
        self.allocator: "WayAllocator | None" = None
        self._order: "list[str]" = []
        self._last_refs: "dict[str, int]" = {}
        self._growing: "set[str]" = set()

    # ------------------------------------------------------------------
    def make_monitor(self) -> ProfMonitor:
        control = self.control
        return ProfMonitor(control.pqos, control.tenants, self.params,
                           time_scale=control.time_scale)

    def on_init(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        self.allocator = WayAllocator.for_tenants(
            control.pqos.num_ways, self.params, tenants)
        if self.manage_ddio:
            # Boot in Low Keep: DDIO pinned at the minimum (Sec. IV-C).
            self.allocator.clamp_ddio_min()
        else:
            self.allocator.ddio_ways = control.pqos.ddio_way_count()
        self.state = INITIAL_STATE
        self._order = placement_order(tenants)
        self._growing = set()
        self._apply_layout()

    def pre_observe(self, now: float) -> None:
        if not self.manage_ddio:
            # Track externally controlled DDIO width (e.g. the Fig. 10
            # script widening DDIO mid-run) so overlap detection and
            # shuffling see the true mask.
            width = self.control.pqos.ddio_way_count()
            if width != self.allocator.ddio_ways:
                self.allocator.ddio_ways = width
                self._apply_layout()

    def decide(self, now: float, sample: SystemSample) -> Decision:
        control = self.control
        daemon = self.daemon
        overlap = (daemon.layout.overlap_tenants(control.tenants)
                   if daemon.layout else set())
        report = daemon.monitor.classify(
            sample, ddio_at_max=self.allocator.ddio_at_max,
            ddio_at_min=self.allocator.ddio_at_min, ddio_overlap=overlap)
        self._last_refs = {name: t.llc_references
                           for name, t in sample.tenants.items()}

        if report.kind in (ChangeKind.STABLE, ChangeKind.IPC_ONLY):
            return Decision(report.kind, "none", stable=True)

        if report.kind is ChangeKind.CORE_SIDE:
            action = self._core_side_action(report)
            self._apply_layout()
            return Decision(report.kind, action, stable=False)

        tracer = enabled_tracer()
        if report.kind is ChangeKind.SHUFFLE_FIRST and self.shuffle:
            # Special case 3: reshuffle before touching any way counts.
            self._order = placement_order(control.tenants, self._last_refs)
            if tracer is not None:
                tracer.instant("shuffle", "order", reason="shuffle-first",
                               order=list(self._order))
            self._apply_layout()
            return Decision(report.kind, "shuffle", stable=False)

        old_state = self.state
        self.state = next_state(old_state, report.signals)
        if tracer is not None:
            tracer.instant("fsm", "transition", src=old_state.value,
                           dst=self.state.value,
                           signals=asdict(report.signals))
        if REGISTRY.enabled:
            REGISTRY.counter(
                "repro_policy_transitions_total",
                "IAT FSM state transitions by (from, to) state").labels(
                **{"from": old_state.value,
                   "to": self.state.value}).inc()
        action = self._apply_state_action(report)
        grown = self._continue_growth_sessions(report)
        if grown:
            action = f"{action}; {grown}"
        if self.shuffle:
            self._order = placement_order(control.tenants, self._last_refs)
            if tracer is not None:
                tracer.instant("shuffle", "order", reason="post-transition",
                               order=list(self._order))
        self._apply_layout()
        return Decision(ChangeKind.FSM, action, stable=False)

    # ------------------------------------------------------------------
    def _core_side_action(self, report: ChangeReport) -> str:
        """Special case 2 of Sec. IV-B: pure core-side demand, no I/O
        involvement — "other existing mechanisms can be called to
        allocate LLC ways for the tenant".  A dCAT-style
        grow-while-it-helps loop stands in for those mechanisms: a
        miss-rate jump starts a growth session; each grant continues as
        long as it keeps lowering the miss rate and the rate is still
        meaningful; a sustained low rate above the floor is reclaimed.
        """
        if not self.manage_tenant_ways or not report.tenant:
            return "delegate (frozen)"
        tenant = report.tenant
        group = self.control.tenants.by_name(tenant).group
        delta_pp = report.miss_rate_delta.get(tenant, 0.0)
        rate = report.miss_rate.get(tenant, 0.0)
        if delta_pp > 1.0 and rate > self.GROWTH_STOP_RATE:
            self._growing.add(tenant)
            if self.allocator.grow_group(group):
                return f"core-side +1 way {group}"
            return f"core-side {group} at cap"
        grown = self._continue_growth_sessions(report)
        if grown:
            return grown
        if delta_pp < -1.0 and rate < 0.05:
            if self.allocator.shrink_group(group,
                                           floor=self._group_floor(group)):
                return f"core-side -1 way {group}"
        return "delegate (no demand)"

    #: Miss rate below which a growth session stops granting ways.
    GROWTH_STOP_RATE = 0.15

    def _continue_growth_sessions(self, report: ChangeReport) -> str:
        """Keep granting to tenants in an active growth session while
        each grant keeps lowering their miss rate meaningfully."""
        if not self.manage_tenant_ways:
            return ""
        actions = []
        for tenant in sorted(self._growing):
            rate = report.miss_rate.get(tenant, 0.0)
            delta_pp = report.miss_rate_delta.get(tenant, 0.0)
            if rate > self.GROWTH_STOP_RATE and delta_pp < -0.5:
                group = self.control.tenants.by_name(tenant).group
                if self.allocator.grow_group(group):
                    actions.append(f"grow +1 {group}")
                    continue
            self._growing.discard(tenant)
        return ", ".join(actions)

    def _apply_state_action(self, report: ChangeReport) -> str:
        alloc = self.allocator
        state = self.state
        if state is State.LOW_KEEP:
            if self.manage_ddio and alloc.clamp_ddio_min():
                return "ddio -> min"
            return "keep"
        if state is State.HIGH_KEEP:
            return "keep(max)"
        if state is State.IO_DEMAND:
            if not self.manage_ddio:
                return "io-demand (ddio frozen)"
            # UCP-style sizing keys off how steeply the DDIO misses are
            # climbing (percent change expressed in points).
            step = alloc.increment_step(report.ddio_miss_delta * 100.0)
            if alloc.grow_ddio(step=step):
                return f"ddio +{step}"
            return "ddio at max"
        if state is State.CORE_DEMAND:
            if not self.manage_tenant_ways:
                return "core-demand (tenant ways frozen)"
            target = self._select_core_demand_tenant(report)
            if target is None:
                return "core-demand (no target)"
            delta_pp = report.miss_rate_delta.get(target, 0.0)
            if delta_pp <= 0.5:
                # Nobody's miss rate is actually rising: granting ways
                # would be noise-chasing (and would run a group to its
                # cap in a few intervals).
                return "core-demand (no rising demand)"
            group = self.control.tenants.by_name(target).group
            step = alloc.increment_step(delta_pp)
            if alloc.grow_group(group, step=step):
                return f"group +{step} {group}"
            return f"group at cap {group}"
        if state is State.RECLAIM:
            return self._reclaim(report)
        raise AssertionError(f"unhandled state {state!r}")

    def _select_core_demand_tenant(self, report: ChangeReport) -> "str | None":
        """Who gets the extra way in Core Demand (Sec. IV-D).

        Aggregation model: the software stack first — its Rx/Tx buffers
        gate every attached tenant.  Slicing model: the I/O tenant with
        the largest miss-rate increase (percentage points).
        """
        tenants = self.control.tenants
        stack = tenants.stack
        if stack is not None:
            return stack.name
        candidates = [t.name for t in tenants.io_tenants]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda name: report.miss_rate_delta.get(name, 0.0))

    def _group_floor(self, group: str) -> int:
        return group_floor(self.control.tenants, group)

    def _group_refs(self, group: str) -> int:
        members = self.control.tenants.group_members(group)
        return sum(self._last_refs.get(t.name, 0) for t in members)

    def _group_miss_rate(self, group: str, report: ChangeReport) -> float:
        members = self.control.tenants.group_members(group)
        return max((report.miss_rate.get(t.name, 0.0) for t in members),
                   default=0.0)

    def _reclaim(self, report: ChangeReport) -> str:
        """Reclaim one way from DDIO (preferred while above the minimum)
        or from a grown group whose allocation is "more than enough"
        (Sec. IV-C): low miss rate, smallest LLC reference count first.
        A grown group that is still missing hard keeps its ways — taking
        them back would just re-trigger Core Demand next interval."""
        alloc = self.allocator
        if self.manage_ddio and not alloc.ddio_at_min:
            alloc.shrink_ddio()
            return "ddio -1"
        if not self.manage_tenant_ways:
            return "reclaim (frozen)"
        grown = [group for group, ways in alloc.group_ways.items()
                 if ways > self._group_floor(group)
                 and self._group_miss_rate(group, report) < 0.10]
        if not grown:
            return "reclaim (nothing to reclaim)"
        victim = min(grown, key=self._group_refs)
        alloc.shrink_group(victim, floor=self._group_floor(victim))
        return f"group -1 {victim}"

    # ------------------------------------------------------------------
    def _trim_pc_for_isolation(self) -> None:
        """Keep non-I/O performance-critical groups small enough to fit
        below the DDIO ways ("the tenants running PC workloads should be
        isolated from LLC ways for DDIO as much as possible",
        Sec. IV-D).  Without this, a PC group grown to its cap would be
        forced into the DDIO region when the mask widens (Fig. 10/11's
        t=15 s script)."""
        if not self.manage_tenant_ways:
            return
        alloc = self.allocator
        limit = alloc.num_ways - alloc.ddio_ways
        if limit < 1:
            return
        tenants = self.control.tenants
        for group, ways in alloc.group_ways.items():
            members = tenants.group_members(group)
            pc_non_io = all(t.is_pc and not t.is_io for t in members)
            if pc_non_io and ways > limit:
                alloc.group_ways[group] = max(self._group_floor(group),
                                              limit)

    def _apply_layout(self) -> None:
        """Plan masks for the current order/counts and program them."""
        tenants = self.control.tenants
        self._trim_pc_for_isolation()
        if self.shuffle:
            order = self._order
        else:
            order = tenants.group_names()
        layout = self.allocator.layout(order)
        self.daemon.apply_layout(layout, set_ddio=self.manage_ddio)


def _initial_order(tenants: TenantSet,
                   shuffle_seed: "int | None") -> "list[str]":
    order = tenants.group_names()
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        order = [order[i] for i in rng.permutation(len(order))]
    return order


def _apply_group_masks(control: ControlPlane, layout: Layout,
                       previous: "Layout | None") -> None:
    """Program per-tenant mask deltas, leaving the DDIO mask alone."""
    control.apply_layout(layout, previous, set_ddio=False)


class StaticPolicy:
    """Fixed allocation applied once at start-up (the paper's baseline).

    With ``shuffle_seed`` set, the placement follows the paper's
    Sec. VI-C protocol: I/O groups (the networking containers and the
    software stack) are packed at the bottom ways, away from DDIO, while
    the non-networking groups are placed in a random order with the idle
    ways scattered randomly between them — so, across seeds, a
    cache-hungry container sometimes lands on the DDIO ways (the wide
    baseline whiskers of Figs. 12-14) and sometimes does not.
    """

    def __init__(self, control: ControlPlane, *,
                 explicit_masks: "dict[str, int] | None" = None,
                 shuffle_seed: "int | None" = None) -> None:
        self.control = control
        self.explicit_masks = explicit_masks
        self.shuffle_seed = shuffle_seed
        self.interval_s = 1e9  # effectively never re-invoked
        self.layout: "Layout | None" = None

    def _group_counts(self, groups: "list[str]") -> "list[tuple[str, int]]":
        tenants = self.control.tenants
        return [(g, max(max(1, t.initial_ways)
                        for t in tenants.group_members(g)))
                for g in groups]

    def _random_layout(self, ddio_ways: int) -> Layout:
        tenants = self.control.tenants
        num_ways = self.control.pqos.num_ways
        rng = np.random.default_rng(self.shuffle_seed)
        io_groups = [g for g in tenants.group_names()
                     if any(t.is_io or t.is_stack
                            for t in tenants.group_members(g))]
        other = [g for g in tenants.group_names() if g not in io_groups]
        other = [other[i] for i in rng.permutation(len(other))]
        counts = self._group_counts(io_groups + other)
        total = sum(c for _, c in counts)
        free = max(0, num_ways - total)
        # Scatter the idle ways as gaps between the non-I/O groups.
        gaps = (rng.multinomial(free, [1.0 / (len(other) + 1)]
                                * (len(other) + 1))
                if free and other else [0] * (len(other) + 1))
        masks: "dict[str, int]" = {}
        cursor = 0
        gap_idx = 0
        for group, count in counts:
            if group in other:
                cursor += int(gaps[gap_idx])
                gap_idx += 1
            start = min(cursor, num_ways - count)
            masks[group] = ((1 << count) - 1) << start
            cursor = start + count
        return Layout(group_masks=masks,
                      ddio_mask=ways_to_mask(num_ways - ddio_ways,
                                             ddio_ways))

    def on_start(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        ddio_ways = control.pqos.ddio_way_count()
        if self.explicit_masks is not None:
            layout = Layout(group_masks=dict(self.explicit_masks),
                            ddio_mask=control.pqos.ddio_get_mask())
        elif self.shuffle_seed is not None:
            layout = self._random_layout(ddio_ways)
        else:
            counts = self._group_counts(tenants.group_names())
            layout = plan_layout(control.pqos.num_ways, ddio_ways, counts)
        _apply_group_masks(control, layout, None)
        self.layout = layout

    def on_interval(self, now: float) -> None:
        """Static: nothing to do."""


class ReactivePolicy:
    """Miss-rate driven, I/O-unaware dynamic allocation (dCAT-like)."""

    #: Miss-rate jump (percentage points) that triggers a way grant.
    GROW_THRESHOLD_PP = 2.0
    #: Relative LLC-reference drop that triggers a reclaim.
    RECLAIM_THRESHOLD = 0.30

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 io_isolated: bool = False,
                 shuffle_seed: "int | None" = None) -> None:
        self.control = control
        self.params = params or IATParams()
        self.io_isolated = io_isolated
        self.shuffle_seed = shuffle_seed
        self.interval_s = self.params.interval_s
        self.allocator: "WayAllocator | None" = None
        self.layout: "Layout | None" = None
        self._order: "list[str]" = []
        self._prev_miss_rate: "dict[str, float]" = {}
        self._prev_refs: "dict[str, int]" = {}
        self._peak_refs: "dict[str, int]" = {}
        self._growing: "set[str]" = set()

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        self.allocator = WayAllocator.for_tenants(
            control.pqos.num_ways, self.params, tenants)
        self.allocator.ddio_ways = control.pqos.ddio_way_count()
        self._order = _initial_order(tenants, self.shuffle_seed)
        for tenant in tenants:
            control.pqos.mon_start(f"policy.{tenant.name}", tenant.cores)
        self._apply()

    def on_interval(self, now: float) -> None:
        control = self.control
        grow_best: "tuple[float, str] | None" = None
        refs_now: "dict[str, int]" = {}
        rate_now: "dict[str, float]" = {}
        for tenant in control.tenants:
            result = control.pqos.mon_poll(f"policy.{tenant.name}")
            group = tenant.group
            refs_now[group] = refs_now.get(group, 0) + result.llc_references
            rate_now[group] = max(rate_now.get(group, 0.0), result.miss_rate)
        for group, rate in rate_now.items():
            delta_pp = (rate - self._prev_miss_rate.get(group, rate)) * 100.0
            if delta_pp > self.GROW_THRESHOLD_PP:
                self._growing.add(group)
                if grow_best is None or delta_pp > grow_best[0]:
                    grow_best = (delta_pp, group)
            elif group in self._growing:
                # Keep granting while the last way kept helping (the
                # dCAT-style grow-while-beneficial loop).
                if rate > 0.10 and delta_pp < -0.5:
                    if grow_best is None:
                        grow_best = (delta_pp, group)
                else:
                    self._growing.discard(group)
        changed = False
        if grow_best is not None:
            changed |= self._grow_into_pool(grow_best[1], refs_now)
        else:
            changed |= self._maybe_reclaim(refs_now)
        # Track the externally controlled DDIO width every interval.
        ddio_ways = control.pqos.ddio_way_count()
        if ddio_ways != self.allocator.ddio_ways:
            self.allocator.ddio_ways = ddio_ways
            changed = True
        if changed:
            self._apply()
        self._prev_miss_rate = rate_now
        self._prev_refs = refs_now

    def _grow_into_pool(self, group: str,
                        refs_now: "dict[str, int]") -> bool:
        """Grant one way from the *idle* pool only.

        Core-only considers every way a core may use — including, since
        it is I/O-unaware, the DDIO ways (the Latent Contender problem).
        I/O-iso excludes the DDIO ways; when its pool is exhausted it
        first takes a way back from a best-effort group ("it has to
        reduce the ways for BE container 2 and 3 to make room").
        """
        alloc = self.allocator
        tenants = self.control.tenants
        limit = alloc.num_ways
        if self.io_isolated:
            limit -= alloc.ddio_ways
        used = sum(alloc.group_ways.values())
        if used >= limit:
            if not self.io_isolated:
                return False  # no idle ways; Core-only never confiscates
            donors = [g for g in alloc.group_ways
                      if g != group
                      and tenants.group_priority(g) is Priority.BE
                      and alloc.group_ways[g] > 1]
            if not donors:
                return False
            victim = min(donors, key=lambda g: refs_now.get(g, 0))
            alloc.group_ways[victim] -= 1
        if alloc.grow_group(group):
            self._peak_refs[group] = refs_now.get(group, 0)
            return True
        return False

    def _maybe_reclaim(self, refs_now: "dict[str, int]") -> bool:
        tenants = self.control.tenants
        for group, ways in self.allocator.group_ways.items():
            floor = max(max(1, t.initial_ways)
                        for t in tenants.group_members(group))
            if ways <= floor:
                continue
            peak = self._peak_refs.get(group, 0)
            if peak and rel_change(refs_now.get(group, 0), peak) \
                    < -self.RECLAIM_THRESHOLD:
                return self.allocator.shrink_group(group, floor=floor)
        return False

    def _fit_to_pool(self) -> None:
        """I/O-iso repartitioning: the core pool excludes the DDIO ways,
        and partitions stay *disjoint*, so when demand exceeds the pool
        other tenants must give ways up — best-effort groups first, then
        performance-critical ones ("it has to reduce the ways for BE
        container 2 and 3 to make room for the PC containers"; after
        DDIO widens, "the PC containers have to share" a smaller pool).
        """
        alloc = self.allocator
        limit = alloc.num_ways - alloc.ddio_ways
        tenants = self.control.tenants

        def shrink_candidates():
            # BE groups yield first; PC groups only as a last resort
            # (the paper's phase-3 I/O-iso: once DDIO takes more ways,
            # even the PC containers are squeezed down to 1-3 ways).
            be = [g for g in alloc.group_ways
                  if tenants.group_priority(g) is Priority.BE]
            pc = [g for g in alloc.group_ways
                  if tenants.group_priority(g) is not Priority.BE]
            be.sort(key=lambda g: -alloc.group_ways[g])
            pc.sort(key=lambda g: -alloc.group_ways[g])
            return be + pc

        guard = 0
        while sum(alloc.group_ways.values()) > limit and guard < 64:
            guard += 1
            took = False
            for group in shrink_candidates():
                if alloc.group_ways[group] > 1:
                    alloc.group_ways[group] -= 1
                    took = True
                    break
            if not took:
                break  # everyone is at one way already

    def _apply(self) -> None:
        if self.io_isolated:
            self._fit_to_pool()
        layout = self.allocator.layout(self._order,
                                       io_isolated=self.io_isolated)
        _apply_group_masks(self.control, layout, self.layout)
        self.layout = layout


class CoreOnlyPolicy(ReactivePolicy):
    """Dynamic allocation ignoring DDIO entirely (Sec. VI-B footnote 4)."""

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 shuffle_seed: "int | None" = None) -> None:
        super().__init__(control, params, io_isolated=False,
                         shuffle_seed=shuffle_seed)


class IOIsoPolicy(ReactivePolicy):
    """Core-only with the DDIO ways excluded from the core pool."""

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 shuffle_seed: "int | None" = None) -> None:
        super().__init__(control, params, io_isolated=True,
                         shuffle_seed=shuffle_seed)


# ======================================================================
# Registry adapters for the legacy engine-driven controllers
# ======================================================================

class _ControllerAdapter(PolicyBase):
    """Hosts a legacy engine-driven controller behind the Policy
    protocol so it can race in the tournament via ControllerDaemon.

    The inner controller keeps programming masks through the shared
    :meth:`ControlPlane.apply_layout` path; the adapter mirrors its
    layout into the daemon afterwards so the iteration log and overlap
    bookkeeping stay truthful.
    """

    legacy_cls: "type | None" = None

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self._inner = None

    def bind(self, daemon: "ControllerDaemon") -> None:
        super().bind(daemon)
        self._inner = self.legacy_cls(daemon.control, **self._kwargs)
        self.interval_s = self._inner.interval_s

    @property
    def allocator(self) -> "WayAllocator | None":
        return getattr(self._inner, "allocator", None)

    def on_init(self, now: float) -> None:
        self._inner.on_start(now)
        self.daemon.layout = self._inner.layout

    def decide(self, now: float, sample: "SystemSample | None") -> Decision:
        before = self._inner.layout
        self._inner.on_interval(now)
        after = self._inner.layout
        self.daemon.layout = after
        changed = after is not before
        return Decision(ChangeKind.POLICY,
                        "rebalance" if changed else "none",
                        stable=not changed)


@register_policy("static", "One-shot static allocation at start-up "
                           "(the paper's baseline)")
class StaticPlanPolicy(_ControllerAdapter):
    legacy_cls = StaticPolicy

    def __init__(self, *, explicit_masks: "dict[str, int] | None" = None,
                 shuffle_seed: "int | None" = None) -> None:
        super().__init__(explicit_masks=explicit_masks,
                         shuffle_seed=shuffle_seed)


@register_policy("core-only", "Reactive miss-driven way allocation, "
                              "I/O-unaware (dCAT-like)")
class CoreOnlyAdapterPolicy(_ControllerAdapter):
    legacy_cls = CoreOnlyPolicy
    params_cls = IATParams

    def __init__(self, params: "IATParams | None" = None, *,
                 shuffle_seed: "int | None" = None) -> None:
        super().__init__(params=params, shuffle_seed=shuffle_seed)


@register_policy("io-iso", "Reactive allocation with the DDIO ways "
                           "excluded from the core pool")
class IOIsoAdapterPolicy(_ControllerAdapter):
    legacy_cls = IOIsoPolicy
    params_cls = IATParams

    def __init__(self, params: "IATParams | None" = None, *,
                 shuffle_seed: "int | None" = None) -> None:
        super().__init__(params=params, shuffle_seed=shuffle_seed)


# ======================================================================
# IOCA-style I/O-aware manager (arXiv:2007.04552)
# ======================================================================

@register_policy("ioca", "IOCA-style I/O-aware manager: sizes the DDIO "
                         "partition from DDIO/PCIe pressure")
class IOCAPolicy(PolicyBase):
    """An IOCA-flavoured controller: watch inline-DMA (DDIO/PCIe)
    pressure directly and size the I/O partition from it.

    Where IAT runs a five-state FSM over counter *deltas*, IOCA keys on
    the pressure level itself: per interval it reads the chip-wide DDIO
    hit+miss count (a proxy for PCIe write traffic into the LLC) and
    the DDIO miss *ratio*.  Sustained pressure with a high miss ratio
    grows the I/O partition; low pressure or a low miss ratio shrinks
    it back so cores reclaim the space.  Core-side demand is served by
    a simple miss-jump grant (one way to the group whose miss rate rose
    the most), and I/O groups are packed at the bottom ways away from
    DDIO — the paper's placement hygiene, applied statically.
    """

    params_cls = IATParams

    def __init__(self, params: "IATParams | None" = None, *,
                 pressure_per_s: float = 1e6,
                 miss_ratio_high: float = 0.20,
                 miss_ratio_low: float = 0.05,
                 grow_threshold_pp: float = 2.0) -> None:
        self.params = params or IATParams()
        self.pressure_per_s = pressure_per_s
        self.miss_ratio_high = miss_ratio_high
        self.miss_ratio_low = miss_ratio_low
        self.grow_threshold_pp = grow_threshold_pp
        self.interval_s = self.params.interval_s
        self.state = PolicyState("watch")
        self.allocator: "WayAllocator | None" = None
        self._order: "list[str]" = []
        self._prev_group_rate: "dict[str, float]" = {}

    def make_monitor(self) -> ProfMonitor:
        control = self.control
        return ProfMonitor(control.pqos, control.tenants, self.params,
                           time_scale=control.time_scale)

    def on_init(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        self.allocator = WayAllocator.for_tenants(
            control.pqos.num_ways, self.params, tenants)
        self.allocator.clamp_ddio_min()
        self.state = PolicyState("watch")
        io_groups = [g for g in tenants.group_names()
                     if any(t.is_io or t.is_stack
                            for t in tenants.group_members(g))]
        self._order = io_groups + [g for g in tenants.group_names()
                                   if g not in io_groups]
        self._prev_group_rate = {}
        self._apply()

    def _pressure_floor(self) -> float:
        """PCIe-writes-per-interval count that counts as real pressure
        (rate scaled the same way as ``IATParams.miss_low_per_interval``)."""
        return (self.pressure_per_s * self.control.time_scale
                * self.interval_s)

    def decide(self, now: float, sample: SystemSample) -> Decision:
        alloc = self.allocator
        total = sample.ddio_hits + sample.ddio_misses
        pressured = total >= self._pressure_floor()
        miss_ratio = (sample.ddio_misses / total) if total else 0.0
        changed = False
        actions: "list[str]" = []

        if pressured and miss_ratio > self.miss_ratio_high:
            self.state = PolicyState("pressure")
            if alloc.grow_ddio():
                changed = True
                actions.append("ddio +1")
            else:
                actions.append("ddio at max")
        elif (not pressured or miss_ratio < self.miss_ratio_low) \
                and not alloc.ddio_at_min:
            self.state = PolicyState("quiet")
            if alloc.shrink_ddio():
                changed = True
                actions.append("ddio -1")
        else:
            self.state = PolicyState("watch")

        rate_now: "dict[str, float]" = {}
        for tenant in self.control.tenants:
            t_sample = sample.tenants.get(tenant.name)
            if t_sample is None:
                continue
            group = tenant.group
            rate_now[group] = max(rate_now.get(group, 0.0),
                                  t_sample.miss_rate)
        best: "tuple[float, str] | None" = None
        for group in sorted(rate_now):
            delta_pp = (rate_now[group]
                        - self._prev_group_rate.get(group,
                                                    rate_now[group])) * 100.0
            if delta_pp > self.grow_threshold_pp and (
                    best is None or delta_pp > best[0]):
                best = (delta_pp, group)
        if best is not None and alloc.grow_group(best[1]):
            changed = True
            actions.append(f"group +1 {best[1]}")
        self._prev_group_rate = rate_now

        if changed:
            self._apply()
        return Decision(ChangeKind.POLICY, "; ".join(actions) or "hold",
                        stable=not changed)

    def _apply(self) -> None:
        layout = self.allocator.layout(self._order)
        self.daemon.apply_layout(layout, set_ddio=True)


# ======================================================================
# LFOC-style fairness clustering (arXiv:2402.07578)
# ======================================================================

@register_policy("lfoc", "LFOC-style fairness clustering: equalizes "
                         "per-tenant slowdowns by moving ways between "
                         "groups")
class LFOCPolicy(PolicyBase):
    """An LFOC-flavoured fairness controller.

    LFOC clusters workloads by how much cache actually helps them and
    partitions the LLC to minimize *unfairness* — the spread of
    per-workload slowdowns.  This policy reproduces that shape online:
    a :class:`~repro.core.monitor.SlowdownTracker` estimates each
    tenant's slowdown (best-observed IPC over current IPC), groups
    whose members stream through the cache (miss rate above
    ``streaming_miss_rate``) are classified as squanderers that extra
    ways cannot help, and whenever the max/min slowdown ratio exceeds
    ``unfairness_threshold`` one way moves from the least-slowed donor
    (squanderers first) to the most-slowed non-streaming group.  The
    DDIO partition is never touched — fairness clustering is a
    core-side discipline; the externally programmed width is re-read
    every interval like the reactive policies do.
    """

    params_cls = IATParams

    def __init__(self, params: "IATParams | None" = None, *,
                 unfairness_threshold: float = 1.15,
                 streaming_miss_rate: float = 0.50) -> None:
        self.params = params or IATParams()
        self.unfairness_threshold = unfairness_threshold
        self.streaming_miss_rate = streaming_miss_rate
        self.interval_s = self.params.interval_s
        self.state = PolicyState("balanced")
        self.allocator: "WayAllocator | None" = None
        self.tracker = SlowdownTracker()
        self._order: "list[str]" = []

    def make_monitor(self) -> ProfMonitor:
        control = self.control
        return ProfMonitor(control.pqos, control.tenants, self.params,
                           time_scale=control.time_scale)

    def on_init(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        self.allocator = WayAllocator.for_tenants(
            control.pqos.num_ways, self.params, tenants)
        self.allocator.ddio_ways = control.pqos.ddio_way_count()
        self.state = PolicyState("balanced")
        self.tracker = SlowdownTracker()
        self._order = tenants.group_names()
        self._apply()

    def pre_observe(self, now: float) -> None:
        width = self.control.pqos.ddio_way_count()
        if width != self.allocator.ddio_ways:
            self.allocator.ddio_ways = width
            self._apply()

    def decide(self, now: float, sample: SystemSample) -> Decision:
        slowdowns = self.tracker.update(
            {name: t.ipc for name, t in sample.tenants.items()})
        tenants = self.control.tenants
        alloc = self.allocator
        group_slow: "dict[str, float]" = {}
        group_streams: "dict[str, bool]" = {}
        for tenant in tenants:
            group = tenant.group
            group_slow[group] = max(group_slow.get(group, 1.0),
                                    slowdowns.get(tenant.name, 1.0))
            t_sample = sample.tenants.get(tenant.name)
            miss_rate = t_sample.miss_rate if t_sample else 0.0
            group_streams[group] = (group_streams.get(group, True)
                                    and miss_rate > self.streaming_miss_rate)

        unfairness = self.tracker.unfairness()
        if unfairness <= self.unfairness_threshold:
            self.state = PolicyState("balanced")
            return Decision(ChangeKind.POLICY,
                            f"balanced (unfairness {unfairness:.2f})",
                            stable=True)

        cap = min(self.params.tenant_ways_max, alloc.num_ways - 1)
        receiver = None
        for group in sorted(group_slow, key=lambda g: -group_slow[g]):
            if group_streams.get(group):
                continue  # squanderer: more cache will not help it
            if alloc.group_ways.get(group, 0) < cap:
                receiver = group
                break
        donors = [g for g in sorted(group_slow)
                  if g != receiver
                  and alloc.group_ways.get(g, 0) > group_floor(tenants, g)]
        # Squanderers donate first; among peers, the least-slowed does.
        donors.sort(key=lambda g: (not group_streams.get(g, False),
                                   group_slow[g]))
        if receiver is None or not donors:
            self.state = PolicyState("saturated")
            return Decision(ChangeKind.POLICY,
                            f"no move (unfairness {unfairness:.2f})",
                            stable=True)

        donor = donors[0]
        alloc.group_ways[donor] -= 1
        alloc.group_ways[receiver] += 1
        self.state = PolicyState("rebalance")
        self._apply()
        return Decision(
            ChangeKind.POLICY,
            f"way {donor} -> {receiver} (unfairness {unfairness:.2f})",
            stable=False)

    def _apply(self) -> None:
        layout = self.allocator.layout(self._order)
        self.daemon.apply_layout(layout, set_ddio=False)

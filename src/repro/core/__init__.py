"""IAT: the paper's I/O-aware LLC management mechanism."""

from .allocator import Layout, WayAllocator, pack_bottom_up, plan_layout
from .control import ControlPlane
from .daemon import IATDaemon, IterationLog, IterationTiming
from .fsm import INITIAL_STATE, Signals, State, next_state
from .monitor import (ChangeKind, ChangeReport, ProfMonitor, SystemSample,
                      TenantSample, rel_change)
from .params import IATParams
from .policies import CoreOnlyPolicy, IOIsoPolicy, ReactivePolicy, StaticPolicy
from .shuffler import group_refs, placement_order, share_tenant

__all__ = [
    "ChangeKind", "ChangeReport", "ControlPlane", "CoreOnlyPolicy",
    "IATDaemon", "IATParams", "INITIAL_STATE", "IOIsoPolicy", "IterationLog",
    "IterationTiming", "Layout", "ProfMonitor", "ReactivePolicy", "Signals",
    "State", "StaticPolicy", "SystemSample", "TenantSample", "WayAllocator",
    "group_refs", "next_state", "pack_bottom_up", "placement_order",
    "plan_layout", "rel_change", "share_tenant",
]

"""IAT: the paper's I/O-aware LLC management mechanism."""

from .allocator import Layout, WayAllocator, pack_bottom_up, plan_layout
from .control import ControlPlane
from .daemon import (ControllerDaemon, IATDaemon, IterationLog,
                     IterationTiming)
from .fsm import INITIAL_STATE, Signals, State, next_state
from .monitor import (ChangeKind, ChangeReport, ProfMonitor, SlowdownTracker,
                      SystemSample, TenantSample, jain_fairness, rel_change)
from .params import IATParams
from .policies import (CoreOnlyPolicy, Decision, IATPolicy, IOCAPolicy,
                       IOIsoPolicy, LFOCPolicy, Policy, PolicyBase,
                       PolicyInfo, PolicyState, ReactivePolicy, StaticPolicy,
                       available_policies, create_policy, get_policy,
                       register_policy)
from .shuffler import group_refs, placement_order, share_tenant

__all__ = [
    "ChangeKind", "ChangeReport", "ControlPlane", "ControllerDaemon",
    "CoreOnlyPolicy", "Decision", "IATDaemon", "IATParams", "IATPolicy",
    "INITIAL_STATE", "IOCAPolicy", "IOIsoPolicy", "IterationLog",
    "IterationTiming", "LFOCPolicy", "Layout", "Policy", "PolicyBase",
    "PolicyInfo", "PolicyState", "ProfMonitor", "ReactivePolicy", "Signals",
    "SlowdownTracker", "State", "StaticPolicy", "SystemSample",
    "TenantSample", "WayAllocator", "available_policies", "create_policy",
    "get_policy", "group_refs", "jain_fairness", "next_state",
    "pack_bottom_up", "placement_order", "plan_layout", "register_policy",
    "rel_change", "share_tenant",
]

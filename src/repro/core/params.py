"""IAT tuning parameters (the paper's Table II).

| Name               | Paper value |
|--------------------|-------------|
| THRESHOLD_STABLE   | 3%          |
| THRESHOLD_MISS_LOW | 1M/s        |
| DDIO_WAYS_MIN/MAX  | 1 / 6       |
| Sleep interval     | 1 second    |

``threshold_miss_low`` is a *real-time* rate; because the simulator runs
at ``time_scale`` of real rates, :meth:`IATParams.miss_low_per_interval`
converts it to a per-interval count for the daemon.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IATParams:
    """All daemon knobs, defaulting to Table II."""

    threshold_stable: float = 0.03
    threshold_miss_low_per_s: float = 1e6
    ddio_ways_min: int = 1
    ddio_ways_max: int = 6
    interval_s: float = 1.0
    #: Way-increment policy: "one" (paper default, one way per iteration)
    #: or "ucp" (miss-curve-guided increments, mentioned in Sec. IV-D as
    #: an explorable alternative; see the ablation bench).
    increment_mode: str = "one"
    #: Cap on ways granted to a single tenant in Core Demand (leave at
    #: least one way for everyone else).
    tenant_ways_max: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.threshold_stable < 1:
            raise ValueError("threshold_stable must be a fraction in (0,1)")
        if self.ddio_ways_min < 1 or self.ddio_ways_max < self.ddio_ways_min:
            raise ValueError("need 1 <= ddio_ways_min <= ddio_ways_max")
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if self.increment_mode not in ("one", "ucp"):
            raise ValueError(f"unknown increment mode {self.increment_mode!r}")

    def miss_low_per_interval(self, time_scale: float = 1.0) -> float:
        """THRESHOLD_MISS_LOW as a count per polling interval."""
        return self.threshold_miss_low_per_s * time_scale * self.interval_s

"""The control-plane boundary between IAT and the machine.

Everything the daemon can observe or actuate goes through this object:
the pqos facade (monitoring + CAT + DDIO MSR) and the tenant set.  The
simulator builds it from simulated devices; a real deployment would
build it from :class:`repro.perf.msr.LinuxMsr` and a real pqos binding —
the daemon code is identical either way, which is the point: IAT is a
wrapper-style control loop over RDT primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.pqos import PqosLib
from ..tenants.registry import TenantRegistry
from ..tenants.tenant import TenantSet


@dataclass
class ControlPlane:
    """Handles the daemon needs to run against any backend."""

    pqos: PqosLib
    tenants: TenantSet
    #: Rate scale of the platform behind ``pqos`` (1.0 on real hardware).
    time_scale: float = 1.0
    #: Optional file-backed registry; when present, the daemon re-reads
    #: tenant info after each sleep if the file changed (Sec. IV-E).
    registry: "TenantRegistry | None" = None

    def refresh_tenants(self) -> bool:
        """Reload tenants from the registry if it changed."""
        if self.registry is None or not self.registry.changed():
            return False
        self.tenants = self.registry.load()
        return True

"""The control-plane boundary between IAT and the machine.

Everything the daemon can observe or actuate goes through this object:
the pqos facade (monitoring + CAT + DDIO MSR) and the tenant set.  The
simulator builds it from simulated devices; a real deployment would
build it from :class:`repro.perf.msr.LinuxMsr` and a real pqos binding —
the daemon code is identical either way, which is the point: IAT is a
wrapper-style control loop over RDT primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs.tracer import enabled_tracer
from ..perf.pqos import PqosLib
from ..tenants.registry import TenantRegistry
from ..tenants.tenant import TenantSet

if TYPE_CHECKING:
    from .allocator import Layout


@dataclass
class ControlPlane:
    """Handles the daemon needs to run against any backend."""

    pqos: PqosLib
    tenants: TenantSet
    #: Rate scale of the platform behind ``pqos`` (1.0 on real hardware).
    time_scale: float = 1.0
    #: Optional file-backed registry; when present, the daemon re-reads
    #: tenant info after each sleep if the file changed (Sec. IV-E).
    registry: "TenantRegistry | None" = None

    def refresh_tenants(self) -> bool:
        """Reload tenants from the registry if it changed."""
        if self.registry is None or not self.registry.changed():
            return False
        self.tenants = self.registry.load()
        return True

    def apply_layout(self, layout: "Layout",
                     previous: "Layout | None" = None, *,
                     set_ddio: bool = True) -> None:
        """Program a planned :class:`Layout`'s deltas against ``previous``.

        The one actuation path every policy shares: per-tenant CAT masks
        that differ from the previous layout are written through
        ``pqos.alloc_set`` and, when ``set_ddio`` is true (the policy
        owns the DDIO partition), a changed DDIO mask is written through
        ``pqos.ddio_set_mask``.  Each programmed mask emits a trace
        instant so the event stream records every actuation regardless
        of which policy decided it.
        """
        pqos = self.pqos
        tracer = enabled_tracer()
        for tenant in self.tenants:
            mask = layout.mask_of(tenant)
            old = (previous.group_masks.get(tenant.group)
                   if previous else None)
            if old != mask:
                pqos.alloc_set(tenant.cos_id, mask)
                if tracer is not None:
                    tracer.instant("mask", "tenant", tenant=tenant.name,
                                   group=tenant.group, cos=tenant.cos_id,
                                   mask=mask)
        if set_ddio and (previous is None
                         or previous.ddio_mask != layout.ddio_mask):
            pqos.ddio_set_mask(layout.ddio_mask)
            if tracer is not None:
                tracer.instant("mask", "ddio", mask=layout.ddio_mask,
                               ways=bin(layout.ddio_mask).count("1"))

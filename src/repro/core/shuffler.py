"""LLC-way shuffling policy: who gets to sit next to DDIO (Sec. IV-D).

The planner packs allocation groups bottom-up, so the *last* group in
the order is the one that overlaps DDIO's top-anchored ways when the
cache is over-committed.  The paper's policy, encoded as an ordering:

* performance-critical (PC) groups are isolated from DDIO as much as
  possible — they go to the bottom;
* the aggregation model's software stack sits below the PC tenants
  (it is latency-critical for every attached tenant);
* best-effort (BE) groups fill the top, sorted by their LLC reference
  count in the current interval **descending**, so the BE tenant with
  the smallest reference count — the one that both suffers and causes
  the least contention — ends up adjacent to (and, under pressure,
  overlapping) the DDIO ways.
"""

from __future__ import annotations

from ..tenants.tenant import Priority, TenantSet


def group_refs(tenants: TenantSet,
               llc_references: "dict[str, int]") -> "dict[str, int]":
    """Sum per-tenant LLC reference counts into per-group counts."""
    refs: "dict[str, int]" = {}
    for tenant in tenants:
        refs[tenant.group] = (refs.get(tenant.group, 0)
                              + llc_references.get(tenant.name, 0))
    return refs


def placement_order(tenants: TenantSet,
                    llc_references: "dict[str, int] | None" = None
                    ) -> "list[str]":
    """Bottom-up group order for the layout planner."""
    refs = group_refs(tenants, llc_references or {})
    stack, pc, be = [], [], []
    for group in tenants.group_names():
        priority = tenants.group_priority(group)
        if priority is Priority.STACK:
            stack.append(group)
        elif priority is Priority.PC:
            pc.append(group)
        else:
            be.append(group)
    pc.sort()
    be.sort(key=lambda group: (-refs.get(group, 0), group))
    return stack + pc + be


def share_tenant(tenants: TenantSet,
                 llc_references: "dict[str, int]") -> "str | None":
    """The BE group chosen to share ways with DDIO (smallest LLC ref)."""
    order = placement_order(tenants, llc_references)
    for group in reversed(order):
        if tenants.group_priority(group) is Priority.BE:
            return group
    return order[-1] if order else None

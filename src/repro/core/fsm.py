"""IAT's system-wide Mealy finite state machine (paper Sec. IV-C, Fig. 6).

Five states:

* **Low Keep** — I/O does not press the LLC; DDIO stays at its minimum
  way count.  Initial state.
* **High Keep** — DDIO already holds ``DDIO_WAYS_MAX`` ways; an upper
  bound so the I/O never competes with cores across the whole LLC.
* **I/O Demand** — intensive inbound traffic; write allocates (DDIO
  misses) are frequent because the DDIO ways cannot hold the in-flight
  data: grow DDIO.
* **Core Demand** — the contention comes from a memory-hungry
  application on the cores evicting the Rx buffers (DDIO hits fall,
  misses rise): grow the selected tenant instead.
* **Reclaim** — traffic calmed down while DDIO (or a tenant) still
  holds a mid-level allocation: shrink it back.

Transitions are a pure function of the :class:`Signals` derived from
counter deltas, so the FSM is trivially property-testable (totality,
reachability).  Edge numbers in comments follow Fig. 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class State(enum.Enum):
    """The five IAT system states of Fig. 6 (described in Sec. IV-C)."""

    LOW_KEEP = "low-keep"
    HIGH_KEEP = "high-keep"
    IO_DEMAND = "io-demand"
    CORE_DEMAND = "core-demand"
    RECLAIM = "reclaim"


#: The state IAT boots in (Sec. IV-C: "initialized from the Low Keep state").
INITIAL_STATE = State.LOW_KEEP


@dataclass(frozen=True)
class Signals:
    """Counter-delta predicates feeding one FSM step.

    ``miss_high``   DDIO miss rate above THRESHOLD_MISS_LOW.
    ``miss_up``     DDIO misses grew significantly vs. last interval.
    ``miss_down``   DDIO misses shrank significantly.
    ``hit_up``      DDIO hits grew significantly.
    ``hit_down``    DDIO hits shrank significantly.
    ``llc_ref_up``  system-wide LLC references grew significantly.
    ``at_max_ways`` DDIO already holds DDIO_WAYS_MAX ways.
    ``at_min_ways`` DDIO already holds DDIO_WAYS_MIN ways.
    """

    miss_high: bool = False
    miss_up: bool = False
    miss_down: bool = False
    hit_up: bool = False
    hit_down: bool = False
    llc_ref_up: bool = False
    at_max_ways: bool = False
    at_min_ways: bool = False

    def __post_init__(self) -> None:
        if self.miss_up and self.miss_down:
            raise ValueError("miss_up and miss_down are exclusive")
        if self.hit_up and self.hit_down:
            raise ValueError("hit_up and hit_down are exclusive")


def next_state(state: State, sig: Signals) -> State:
    """One FSM step.  Total over every (state, signals) pair."""
    if state is State.LOW_KEEP:
        if sig.miss_high:
            if sig.hit_down and sig.llc_ref_up:
                return State.CORE_DEMAND            # edge 3
            return State.IO_DEMAND                  # edge 1
        return State.LOW_KEEP

    # "Significant degradation of DDIO miss" (edges 6, 8, 11) moves to
    # Reclaim, whose definition is "the I/O traffic is not intensive"
    # (Sec. IV-C) — so the miss count must also have fallen below
    # THRESHOLD_MISS_LOW, not merely decreased.  Without this gate the
    # controller would reclaim a way it granted one interval earlier
    # while misses are still high, ping-ponging between the states.
    calmed = sig.miss_down and not sig.miss_high

    if state is State.IO_DEMAND:
        if sig.hit_down and not sig.miss_down:
            return State.CORE_DEMAND                # edge 7
        if calmed:
            return State.RECLAIM                    # edge 6
        if sig.miss_high and sig.at_max_ways:
            return State.HIGH_KEEP                  # edge 10
        return State.IO_DEMAND

    if state is State.HIGH_KEEP:
        # High Keep "obeys the same rule" as I/O Demand (edges 11, 12).
        if sig.hit_down and not sig.miss_down:
            return State.CORE_DEMAND                # edge 12
        if calmed:
            return State.RECLAIM                    # edge 11
        return State.HIGH_KEEP

    if state is State.CORE_DEMAND:
        if calmed:
            return State.RECLAIM                    # edge 8
        if sig.miss_up and not sig.hit_down:
            return State.IO_DEMAND                  # edge 4
        return State.CORE_DEMAND

    if state is State.RECLAIM:
        if sig.miss_up:
            if sig.hit_down:
                return State.CORE_DEMAND            # edge 9
            return State.IO_DEMAND                  # edge 5
        if sig.at_min_ways:
            return State.LOW_KEEP                   # edge 2
        return State.RECLAIM

    raise AssertionError(f"unhandled state {state!r}")

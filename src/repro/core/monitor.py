"""Poll Prof Data: counter polling, deltas, and change classification.

Implements paper Sec. IV-B.  Each interval the monitor polls

* per-tenant IPC and LLC reference/miss (aggregated over the tenant's
  cores via one pqos monitoring group per tenant), and
* chip-wide DDIO hit/miss.

It then compares against the previous interval.  If no event moved by
more than ``THRESHOLD_STABLE`` the system is *stable* and the daemon
sleeps.  Otherwise the change is classified (the three special cases of
Sec. IV-B) before the FSM runs:

1. IPC-only change — neither cache/memory nor I/O related: ignore.
2. A non-I/O tenant with **no** DDIO overlap changed (LLC ref/miss
   moved, DDIO counters did not): core-side demand, delegate to the
   core-only fallback.
3. A non-I/O tenant **with** DDIO overlap changed along with DDIO
   counters: try re-shuffling the way layout first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..perf.pqos import PqosLib
from ..tenants.tenant import TenantSet
from .fsm import Signals
from .params import IATParams

_EPS = 1e-9


def rel_change(current: float, previous: float) -> float:
    """Signed relative change, safe at zero."""
    if abs(previous) < _EPS:
        return 0.0 if abs(current) < _EPS else 1.0
    return (current - previous) / abs(previous)


@dataclass
class TenantSample:
    """One tenant's deltas for one interval."""

    name: str
    ipc: float
    llc_references: int
    llc_misses: int

    @property
    def miss_rate(self) -> float:
        if self.llc_references == 0:
            return 0.0
        return self.llc_misses / self.llc_references


@dataclass
class SystemSample:
    """Everything the daemon sees in one Poll Prof Data step."""

    tenants: "dict[str, TenantSample]"
    ddio_hits: int
    ddio_misses: int

    @property
    def total_llc_references(self) -> int:
        return sum(t.llc_references for t in self.tenants.values())

    @property
    def total_llc_misses(self) -> int:
        return sum(t.llc_misses for t in self.tenants.values())


class ChangeKind(enum.Enum):
    """Outcome of the stability check and special-case filters."""

    STABLE = "stable"
    IPC_ONLY = "ipc-only"
    CORE_SIDE = "core-side"          # special case 2: delegate
    SHUFFLE_FIRST = "shuffle-first"  # special case 3: reshuffle layout
    FSM = "fsm"                      # run the state machine
    POLICY = "policy"                # non-IAT policy made the decision


@dataclass
class ChangeReport:
    """Classification plus the FSM signals derived from the deltas."""

    kind: ChangeKind
    signals: Signals
    #: Tenant named by special cases 2/3 (the one whose change triggered).
    tenant: "str | None" = None
    #: Per-tenant miss-rate delta (percentage points) for tenant selection
    #: in the Core Demand action (slicing model, Sec. IV-D).
    miss_rate_delta: "dict[str, float]" = field(default_factory=dict)
    #: Per-tenant absolute miss rate this interval (for the core-side
    #: grow-while-it-helps fallback).
    miss_rate: "dict[str, float]" = field(default_factory=dict)
    #: Relative change of the chip-wide DDIO miss count vs the previous
    #: interval (feeds the UCP-style increment sizing in I/O Demand).
    ddio_miss_delta: float = 0.0


class ProfMonitor:
    """Owns the pqos monitoring groups and the previous-interval state."""

    def __init__(self, pqos: PqosLib, tenants: TenantSet,
                 params: IATParams, *, time_scale: float = 1.0) -> None:
        self._pqos = pqos
        self._params = params
        self._miss_low = params.miss_low_per_interval(time_scale)
        self._tenants = tenants
        self._prev: "SystemSample | None" = None
        self._prev_miss_rate: "dict[str, float]" = {}
        self._groups: "list[str]" = []
        for tenant in tenants:
            group = f"iat.{tenant.name}"
            pqos.mon_start(group, tenant.cores)
            self._groups.append(group)

    def close(self) -> None:
        for group in self._groups:
            self._pqos.mon_stop(group)
        self._groups.clear()

    # ------------------------------------------------------------------
    def poll(self) -> SystemSample:
        """One Poll Prof Data step: fresh per-interval deltas."""
        tenants: "dict[str, TenantSample]" = {}
        for tenant in self._tenants:
            result = self._pqos.mon_poll(f"iat.{tenant.name}")
            tenants[tenant.name] = TenantSample(
                name=tenant.name, ipc=result.ipc,
                llc_references=result.llc_references,
                llc_misses=result.llc_misses)
        hits, misses = self._pqos.ddio_poll()
        return SystemSample(tenants=tenants, ddio_hits=hits,
                            ddio_misses=misses)

    # ------------------------------------------------------------------
    def classify(self, sample: SystemSample, *, ddio_at_max: bool,
                 ddio_at_min: bool,
                 ddio_overlap: "set[str]") -> ChangeReport:
        """Stability check, special cases, and FSM signal derivation.

        ``ddio_overlap`` names the tenants whose masks currently overlap
        the DDIO ways (needed for special cases 2 vs. 3).
        """
        prev = self._prev
        params = self._params
        signals = self._signals(sample, prev, ddio_at_max=ddio_at_max,
                                ddio_at_min=ddio_at_min)
        miss_rate_delta = {
            name: (t.miss_rate - self._prev_miss_rate.get(name, t.miss_rate))
            * 100.0
            for name, t in sample.tenants.items()}
        report = ChangeReport(kind=ChangeKind.FSM, signals=signals,
                              miss_rate_delta=miss_rate_delta,
                              miss_rate={name: t.miss_rate
                                         for name, t in sample.tenants.items()},
                              ddio_miss_delta=(rel_change(sample.ddio_misses,
                                                          prev.ddio_misses)
                                               if prev else 0.0))
        if prev is None:
            self._remember(sample)
            return report

        threshold = params.threshold_stable
        # The two DDIO counters mean different things: misses are the
        # I/O-pressure signal (write allocates evicting the LLC), while
        # the hit count simply tracks the consumption rate — it falls
        # *because* a consumer slowed down.  Core-side classification
        # therefore keys on the miss counter alone; a hit swing with
        # quiet misses is a symptom of core-side change, not I/O change
        # (this is what lets Fig. 9's flow-table growth be detected as
        # Core Demand even though 64 B traffic produces ~no misses).
        miss_changed = abs(rel_change(sample.ddio_misses,
                                      prev.ddio_misses)) > threshold
        hit_changed = abs(rel_change(sample.ddio_hits,
                                     prev.ddio_hits)) > threshold
        ddio_changed = miss_changed or hit_changed
        changed_tenants: "list[str]" = []
        llc_changed_tenants: "list[str]" = []
        for name, cur in sample.tenants.items():
            before = prev.tenants.get(name)
            if before is None:
                continue
            ipc_moved = abs(rel_change(cur.ipc, before.ipc)) > threshold
            llc_moved = (
                abs(rel_change(cur.llc_references, before.llc_references)) > threshold
                or abs(rel_change(cur.llc_misses, before.llc_misses)) > threshold)
            if ipc_moved or llc_moved:
                changed_tenants.append(name)
            if llc_moved:
                llc_changed_tenants.append(name)

        def most_changed(names: "list[str]") -> str:
            return max(names,
                       key=lambda n: abs(miss_rate_delta.get(n, 0.0)))

        if not changed_tenants and not ddio_changed:
            report.kind = ChangeKind.STABLE
        elif changed_tenants and not llc_changed_tenants and not ddio_changed:
            report.kind = ChangeKind.IPC_ONLY          # special case 1
        elif llc_changed_tenants and not miss_changed:
            core_side = self._core_side_candidates(llc_changed_tenants)
            if core_side:
                # Special case 2, with two documented generalizations
                # (DESIGN.md): it also covers the software stack (whose
                # flow-table demand is core-side, Fig. 9) and tenants
                # that happen to overlap DDIO while the miss counter
                # stayed quiet.
                report.kind = ChangeKind.CORE_SIDE
                report.tenant = most_changed(core_side)
        elif llc_changed_tenants and miss_changed:
            non_io = [n for n in self._non_io(llc_changed_tenants)
                      if n in ddio_overlap]
            io_changed = any(n not in non_io for n in llc_changed_tenants)
            if non_io and not io_changed:
                report.kind = ChangeKind.SHUFFLE_FIRST  # special case 3
                report.tenant = most_changed(non_io)
        self._remember(sample)
        return report

    # ------------------------------------------------------------------
    def _signals(self, sample: SystemSample, prev: "SystemSample | None", *,
                 ddio_at_max: bool, ddio_at_min: bool) -> Signals:
        # Direction predicates carry a 2x noise margin on top of
        # THRESHOLD_STABLE: at steady line rate the per-interval DDIO
        # counts jitter by a few percent (pool-cycling beat patterns,
        # Zipf randomness), and a hit_down/miss_up signal must mean a
        # real trend, not that jitter — otherwise the FSM walks into
        # Core Demand on noise.
        threshold = 2.0 * self._params.threshold_stable
        if prev is None:
            return Signals(miss_high=sample.ddio_misses > self._miss_low,
                           at_max_ways=ddio_at_max, at_min_ways=ddio_at_min)
        miss_delta = rel_change(sample.ddio_misses, prev.ddio_misses)
        hit_delta = rel_change(sample.ddio_hits, prev.ddio_hits)
        ref_delta = rel_change(sample.total_llc_references,
                               prev.total_llc_references)
        return Signals(
            miss_high=sample.ddio_misses > self._miss_low,
            miss_up=miss_delta > threshold,
            miss_down=miss_delta < -threshold,
            hit_up=hit_delta > threshold,
            hit_down=hit_delta < -threshold,
            llc_ref_up=ref_delta > threshold,
            at_max_ways=ddio_at_max,
            at_min_ways=ddio_at_min)

    def _non_io(self, names: "list[str]") -> "list[str]":
        out = []
        for name in names:
            tenant = self._tenants.by_name(name)
            if not tenant.is_io and not tenant.is_stack:
                out.append(name)
        return out

    def _core_side_candidates(self, names: "list[str]") -> "list[str]":
        """Tenants whose LLC change can mean core-side demand: non-I/O
        tenants plus the software stack (its lookup tables are core
        data even though it fronts the I/O)."""
        out = []
        for name in names:
            tenant = self._tenants.by_name(name)
            if tenant.is_stack or not tenant.is_io:
                out.append(name)
        return out

    def _remember(self, sample: SystemSample) -> None:
        self._prev = sample
        self._prev_miss_rate = {name: t.miss_rate
                                for name, t in sample.tenants.items()}


# ----------------------------------------------------------------------
# Fairness: per-tenant slowdown estimation (LFOC-style, arXiv:2402.07578)
# ----------------------------------------------------------------------

def jain_fairness(values) -> float:
    """Jain's fairness index over a set of positive values.

    ``(sum x)^2 / (n * sum x^2)`` — 1.0 when all values are equal,
    approaching ``1/n`` when one value dominates.  Zero/negative values
    are excluded (an idle tenant carries no fairness information)."""
    vals = [float(v) for v in values if v > 0.0]
    if not vals:
        return 1.0
    total = sum(vals)
    squares = sum(v * v for v in vals)
    if squares <= 0.0:
        return 1.0
    return (total * total) / (len(vals) * squares)


#: Cap on a single tenant's estimated slowdown: an idle tenant's IPC can
#: approach zero, and an unbounded ratio would swamp the fairness index.
SLOWDOWN_CAP = 100.0


class SlowdownTracker:
    """Per-tenant slowdown estimate for fairness-oriented policies.

    True slowdown compares against each tenant running *alone*; like
    LFOC's online approximation we use the best IPC observed so far as
    the alone-run proxy, so ``slowdown = peak_ipc / current_ipc >= 1``
    once a tenant has shown its best.  The estimate sharpens over time
    and is deliberately conservative early on (everyone starts at 1.0).
    """

    def __init__(self) -> None:
        self._peak: "dict[str, float]" = {}
        self.slowdowns: "dict[str, float]" = {}

    def update(self, ipc_by_name: "dict[str, float]") -> "dict[str, float]":
        """Fold one interval's IPC readings; return current slowdowns."""
        slowdowns: "dict[str, float]" = {}
        for name in sorted(ipc_by_name):
            ipc = float(ipc_by_name[name])
            peak = self._peak.get(name, 0.0)
            if ipc > peak:
                peak = ipc
                self._peak[name] = ipc
            if peak <= 0.0:
                slowdowns[name] = 1.0
            elif ipc <= peak / SLOWDOWN_CAP:
                slowdowns[name] = SLOWDOWN_CAP
            else:
                slowdowns[name] = peak / ipc
        self.slowdowns = slowdowns
        return slowdowns

    def fairness_index(self) -> float:
        """Jain index over the current slowdowns (1.0 = perfectly fair)."""
        return jain_fairness(self.slowdowns.values())

    def unfairness(self) -> float:
        """LFOC's M1-style metric: max slowdown over min slowdown."""
        if not self.slowdowns:
            return 1.0
        vals = list(self.slowdowns.values())
        return max(vals) / max(min(vals), 1e-9)

"""LLC Re-alloc: way-count bookkeeping and layout planning (Sec. IV-D).

Two concerns live here:

* **Way counts** — how many ways DDIO and each allocation group
  currently deserve.  Grown/shrunk one way per iteration (the paper's
  default; a UCP-style multi-way increment is available as
  ``increment_mode="ucp"``).  An *allocation group* is one tenant, or a
  set of tenants sharing a mask (``Tenant.share_group``).
* **Layout planning** — turning way counts plus a bottom-up group order
  into concrete contiguous CAT masks.  Groups are packed from way 0
  upward and DDIO is anchored at the top ways; when the demands exceed
  the cache, the topmost groups are clamped against the top and overlap
  DDIO — so whoever the shuffler placed last is the one sharing ways
  with the I/O.  Idle ways (if any) naturally form the gap just below
  DDIO, satisfying "avoid any core-I/O sharing of LLC ways if LLC ways
  have not been fully allocated".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.cat import ways_to_mask
from ..tenants.tenant import Tenant, TenantSet
from .params import IATParams


@dataclass(frozen=True)
class Layout:
    """Concrete masks for one allocation epoch, keyed by group."""

    group_masks: "dict[str, int]"
    ddio_mask: int

    def mask_of(self, tenant: Tenant) -> int:
        return self.group_masks[tenant.group]

    def overlap_groups(self) -> "set[str]":
        """Groups whose mask shares at least one way with DDIO."""
        return {group for group, mask in self.group_masks.items()
                if mask & self.ddio_mask}

    def overlap_tenants(self, tenants: TenantSet) -> "set[str]":
        overlapping = self.overlap_groups()
        return {t.name for t in tenants if t.group in overlapping}

    def used_mask(self) -> int:
        used = self.ddio_mask
        for mask in self.group_masks.values():
            used |= mask
        return used


def pack_bottom_up(order: "list[tuple[str, int]]", limit_ways: int,
                   total_ways: int) -> "dict[str, int]":
    """Pack ``(group, way_count)`` entries upward within ``limit_ways``.

    Entries that would spill past the limit are clamped against it (and
    so overlap their predecessors).  ``limit_ways < total_ways`` models
    I/O-isolated pools that exclude the DDIO ways.
    """
    if not 1 <= limit_ways <= total_ways:
        raise ValueError("limit_ways outside 1..total_ways")
    masks: "dict[str, int]" = {}
    cursor = 0
    for name, count in order:
        if not 1 <= count <= limit_ways:
            raise ValueError(f"group {name!r} wants {count} ways "
                             f"(pool has {limit_ways})")
        start = min(cursor, limit_ways - count)
        masks[name] = ways_to_mask(start, count)
        cursor = start + count
    return masks


def plan_layout(num_ways: int, ddio_ways: int,
                order: "list[tuple[str, int]]", *,
                io_isolated: bool = False) -> Layout:
    """Pack groups bottom-up and DDIO top-down into ``num_ways``.

    With ``io_isolated`` the core pool excludes the DDIO ways entirely
    (the I/O-iso comparison policy of Sec. VI-B).
    """
    if not 1 <= ddio_ways <= num_ways:
        raise ValueError(f"ddio_ways {ddio_ways} outside 1..{num_ways}")
    limit = num_ways - ddio_ways if io_isolated else num_ways
    if limit < 1:
        raise ValueError("io-isolated pool is empty")
    masks = pack_bottom_up(order, limit, num_ways)
    ddio_mask = ways_to_mask(num_ways - ddio_ways, ddio_ways)
    return Layout(group_masks=masks, ddio_mask=ddio_mask)


@dataclass
class WayAllocator:
    """Tracks the way counts IAT has granted to DDIO and each group."""

    num_ways: int
    params: IATParams
    group_ways: "dict[str, int]" = field(default_factory=dict)
    ddio_ways: int = 2  # hardware default until a state action runs

    @classmethod
    def for_tenants(cls, num_ways: int, params: IATParams,
                    tenants: TenantSet) -> "WayAllocator":
        alloc = cls(num_ways=num_ways, params=params)
        for group in tenants.group_names():
            members = tenants.group_members(group)
            count = max(max(1, t.initial_ways) for t in members)
            alloc.group_ways[group] = min(count, num_ways)
        return alloc

    # -- DDIO ------------------------------------------------------------
    @property
    def ddio_at_max(self) -> bool:
        return self.ddio_ways >= self.params.ddio_ways_max

    @property
    def ddio_at_min(self) -> bool:
        return self.ddio_ways <= self.params.ddio_ways_min

    def grow_ddio(self, *, step: int = 1) -> bool:
        """I/O Demand action; returns True if the mask actually grew."""
        target = min(self.ddio_ways + step, self.params.ddio_ways_max)
        changed = target != self.ddio_ways
        self.ddio_ways = target
        return changed

    def shrink_ddio(self, *, step: int = 1) -> bool:
        target = max(self.ddio_ways - step, self.params.ddio_ways_min)
        changed = target != self.ddio_ways
        self.ddio_ways = target
        return changed

    def clamp_ddio_min(self) -> bool:
        """Low Keep action: pin DDIO at the minimum way count."""
        changed = self.ddio_ways != self.params.ddio_ways_min
        self.ddio_ways = self.params.ddio_ways_min
        return changed

    # -- Groups -----------------------------------------------------------
    def grow_group(self, group: str, *, step: int = 1) -> bool:
        current = self.group_ways[group]
        cap = min(self.params.tenant_ways_max, self.num_ways - 1)
        target = min(current + step, cap)
        self.group_ways[group] = target
        return target != current

    def shrink_group(self, group: str, *, floor: int = 1,
                     step: int = 1) -> bool:
        current = self.group_ways[group]
        target = max(current - step, max(1, floor))
        self.group_ways[group] = target
        return target != current

    def increment_step(self, miss_rate_delta_pp: float) -> int:
        """Ways to add this iteration.

        The paper default adds one way per iteration; ``"ucp"`` mode
        approximates UCP's miss-curve guidance by taking two ways when
        the miss-rate jump is steep (> 10 percentage points).
        """
        if self.params.increment_mode == "ucp" and miss_rate_delta_pp > 10.0:
            return 2
        return 1

    # -- Layout --------------------------------------------------------------
    def layout(self, order: "list[str]", *,
               io_isolated: bool = False) -> Layout:
        """Plan masks for the given bottom-up group order."""
        sequence = [(group, self.group_ways[group]) for group in order]
        return plan_layout(self.num_ways, self.ddio_ways, sequence,
                           io_isolated=io_isolated)

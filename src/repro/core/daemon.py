"""The IAT daemon: the paper's six-step control loop (Sec. IV, Fig. 5).

    Get Tenant Info -> LLC Alloc -> [ Poll Prof Data -> State Transition
    -> LLC Re-alloc -> Sleep ] ...

The daemon is backend-agnostic: it sees the machine only through a
:class:`~repro.core.control.ControlPlane`.  The simulation engine calls
:meth:`on_interval` once per sleep interval (1 s, Table II).

Feature flags reproduce the paper's ablations exactly:

* ``manage_ddio=False`` — Sec. VI-B footnote 3 (the Latent Contender
  experiment isolates shuffling by freezing the DDIO way count);
* ``manage_tenant_ways=False`` — Sec. VI-C ("temporarily disable IAT's
  functionality of assigning more/less LLC ways for tenants, but the
  ways ... will still be shuffled");
* ``shuffle=False`` — used by the Core-only comparison policy.

Per-iteration execution time is tracked two ways for Fig. 15: the
modelled MSR/context-switch cost from the pqos facade (comparable to
the paper's absolute microseconds) and actual wall-clock time of the
Python loop.  Stable iterations (poll only) and unstable iterations
(poll + transition + re-alloc) are recorded separately, as in Fig. 15.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from ..obs.tracer import enabled_tracer
from .allocator import Layout, WayAllocator
from .control import ControlPlane
from .fsm import INITIAL_STATE, State, next_state
from .monitor import ChangeKind, ChangeReport, ProfMonitor
from .params import IATParams
from .shuffler import placement_order


@dataclass
class IterationTiming:
    """One interval's cost, split like Fig. 15."""

    stable: bool
    modelled_us: float
    wall_us: float


@dataclass
class IterationLog:
    """What the daemon saw and did in one interval (for Fig. 11 etc.)."""

    time: float
    state: State
    kind: ChangeKind
    ddio_ways: int
    group_ways: "dict[str, int]"
    action: str


class IATDaemon:
    """I/O-aware LLC management daemon."""

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 manage_ddio: bool = True,
                 manage_tenant_ways: bool = True,
                 shuffle: bool = True) -> None:
        self.control = control
        self.params = params or IATParams()
        self.manage_ddio = manage_ddio
        self.manage_tenant_ways = manage_tenant_ways
        self.shuffle = shuffle
        self.interval_s = self.params.interval_s
        self.state = INITIAL_STATE
        self.monitor: "ProfMonitor | None" = None
        self.allocator: "WayAllocator | None" = None
        self.layout: "Layout | None" = None
        self._order: "list[str]" = []
        self._last_refs: "dict[str, int]" = {}
        self._growing: "set[str]" = set()
        self.timings: "list[IterationTiming]" = []
        self.history: "list[IterationLog]" = []

    # ------------------------------------------------------------------
    # Steps 1-2: Get Tenant Info + LLC Alloc
    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        self._init_tenants(now)

    def _init_tenants(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        if self.monitor is not None:
            self.monitor.close()
        self.monitor = ProfMonitor(control.pqos, tenants, self.params,
                                   time_scale=control.time_scale)
        self.allocator = WayAllocator.for_tenants(
            control.pqos.num_ways, self.params, tenants)
        if self.manage_ddio:
            # Boot in Low Keep: DDIO pinned at the minimum (Sec. IV-C).
            self.allocator.clamp_ddio_min()
        else:
            self.allocator.ddio_ways = control.pqos.ddio_way_count()
        self.state = INITIAL_STATE
        self._order = placement_order(tenants)
        self.layout = None
        self._apply_layout()
        self._log(now, ChangeKind.FSM, "init")

    # ------------------------------------------------------------------
    # Steps 3-5: Poll Prof Data -> State Transition -> LLC Re-alloc
    # ------------------------------------------------------------------
    def on_interval(self, now: float) -> None:
        wall_start = time.perf_counter()
        control = self.control
        control.pqos.reset_cost()
        if control.refresh_tenants():
            self._init_tenants(now)
            return

        if not self.manage_ddio:
            # Track externally controlled DDIO width (e.g. the Fig. 10
            # script widening DDIO mid-run) so overlap detection and
            # shuffling see the true mask.
            width = control.pqos.ddio_way_count()
            if width != self.allocator.ddio_ways:
                self.allocator.ddio_ways = width
                self._apply_layout()

        sample = self.monitor.poll()
        overlap = (self.layout.overlap_tenants(control.tenants)
                   if self.layout else set())
        report = self.monitor.classify(
            sample, ddio_at_max=self.allocator.ddio_at_max,
            ddio_at_min=self.allocator.ddio_at_min, ddio_overlap=overlap)
        self._last_refs = {name: t.llc_references
                           for name, t in sample.tenants.items()}

        if report.kind in (ChangeKind.STABLE, ChangeKind.IPC_ONLY):
            self._finish(now, report.kind, "none", stable=True,
                         wall_start=wall_start)
            return

        if report.kind is ChangeKind.CORE_SIDE:
            action = self._core_side_action(report)
            self._apply_layout()
            self._finish(now, report.kind, action, stable=False,
                         wall_start=wall_start)
            return

        tracer = enabled_tracer()
        if report.kind is ChangeKind.SHUFFLE_FIRST and self.shuffle:
            # Special case 3: reshuffle before touching any way counts.
            self._order = placement_order(control.tenants, self._last_refs)
            if tracer is not None:
                tracer.instant("shuffle", "order", reason="shuffle-first",
                               order=list(self._order))
            self._apply_layout()
            self._finish(now, report.kind, "shuffle", stable=False,
                         wall_start=wall_start)
            return

        old_state = self.state
        self.state = next_state(old_state, report.signals)
        if tracer is not None:
            tracer.instant("fsm", "transition", src=old_state.value,
                           dst=self.state.value,
                           signals=asdict(report.signals))
        action = self._apply_state_action(report)
        grown = self._continue_growth_sessions(report)
        if grown:
            action = f"{action}; {grown}"
        if self.shuffle:
            self._order = placement_order(control.tenants, self._last_refs)
            if tracer is not None:
                tracer.instant("shuffle", "order", reason="post-transition",
                               order=list(self._order))
        self._apply_layout()
        self._finish(now, ChangeKind.FSM, action, stable=False,
                     wall_start=wall_start)

    # ------------------------------------------------------------------
    def _core_side_action(self, report: ChangeReport) -> str:
        """Special case 2 of Sec. IV-B: pure core-side demand, no I/O
        involvement — "other existing mechanisms can be called to
        allocate LLC ways for the tenant".  A dCAT-style
        grow-while-it-helps loop stands in for those mechanisms: a
        miss-rate jump starts a growth session; each grant continues as
        long as it keeps lowering the miss rate and the rate is still
        meaningful; a sustained low rate above the floor is reclaimed.
        """
        if not self.manage_tenant_ways or not report.tenant:
            return "delegate (frozen)"
        tenant = report.tenant
        group = self.control.tenants.by_name(tenant).group
        delta_pp = report.miss_rate_delta.get(tenant, 0.0)
        rate = report.miss_rate.get(tenant, 0.0)
        if delta_pp > 1.0 and rate > self.GROWTH_STOP_RATE:
            self._growing.add(tenant)
            if self.allocator.grow_group(group):
                return f"core-side +1 way {group}"
            return f"core-side {group} at cap"
        grown = self._continue_growth_sessions(report)
        if grown:
            return grown
        if delta_pp < -1.0 and rate < 0.05:
            if self.allocator.shrink_group(group,
                                           floor=self._group_floor(group)):
                return f"core-side -1 way {group}"
        return "delegate (no demand)"

    #: Miss rate below which a growth session stops granting ways.
    GROWTH_STOP_RATE = 0.15

    def _continue_growth_sessions(self, report: ChangeReport) -> str:
        """Keep granting to tenants in an active growth session while
        each grant keeps lowering their miss rate meaningfully."""
        if not self.manage_tenant_ways:
            return ""
        actions = []
        for tenant in sorted(self._growing):
            rate = report.miss_rate.get(tenant, 0.0)
            delta_pp = report.miss_rate_delta.get(tenant, 0.0)
            if rate > self.GROWTH_STOP_RATE and delta_pp < -0.5:
                group = self.control.tenants.by_name(tenant).group
                if self.allocator.grow_group(group):
                    actions.append(f"grow +1 {group}")
                    continue
            self._growing.discard(tenant)
        return ", ".join(actions)

    def _apply_state_action(self, report: ChangeReport) -> str:
        alloc = self.allocator
        state = self.state
        if state is State.LOW_KEEP:
            if self.manage_ddio and alloc.clamp_ddio_min():
                return "ddio -> min"
            return "keep"
        if state is State.HIGH_KEEP:
            return "keep(max)"
        if state is State.IO_DEMAND:
            if not self.manage_ddio:
                return "io-demand (ddio frozen)"
            # UCP-style sizing keys off how steeply the DDIO misses are
            # climbing (percent change expressed in points).
            step = alloc.increment_step(report.ddio_miss_delta * 100.0)
            if alloc.grow_ddio(step=step):
                return f"ddio +{step}"
            return "ddio at max"
        if state is State.CORE_DEMAND:
            if not self.manage_tenant_ways:
                return "core-demand (tenant ways frozen)"
            target = self._select_core_demand_tenant(report)
            if target is None:
                return "core-demand (no target)"
            delta_pp = report.miss_rate_delta.get(target, 0.0)
            if delta_pp <= 0.5:
                # Nobody's miss rate is actually rising: granting ways
                # would be noise-chasing (and would run a group to its
                # cap in a few intervals).
                return "core-demand (no rising demand)"
            group = self.control.tenants.by_name(target).group
            step = alloc.increment_step(delta_pp)
            if alloc.grow_group(group, step=step):
                return f"group +{step} {group}"
            return f"group at cap {group}"
        if state is State.RECLAIM:
            return self._reclaim(report)
        raise AssertionError(f"unhandled state {state!r}")

    def _select_core_demand_tenant(self, report: ChangeReport) -> "str | None":
        """Who gets the extra way in Core Demand (Sec. IV-D).

        Aggregation model: the software stack first — its Rx/Tx buffers
        gate every attached tenant.  Slicing model: the I/O tenant with
        the largest miss-rate increase (percentage points).
        """
        tenants = self.control.tenants
        stack = tenants.stack
        if stack is not None:
            return stack.name
        candidates = [t.name for t in tenants.io_tenants]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda name: report.miss_rate_delta.get(name, 0.0))

    def _group_floor(self, group: str) -> int:
        members = self.control.tenants.group_members(group)
        return max(max(1, t.initial_ways) for t in members)

    def _group_refs(self, group: str) -> int:
        members = self.control.tenants.group_members(group)
        return sum(self._last_refs.get(t.name, 0) for t in members)

    def _group_miss_rate(self, group: str, report: ChangeReport) -> float:
        members = self.control.tenants.group_members(group)
        return max((report.miss_rate.get(t.name, 0.0) for t in members),
                   default=0.0)

    def _reclaim(self, report: ChangeReport) -> str:
        """Reclaim one way from DDIO (preferred while above the minimum)
        or from a grown group whose allocation is "more than enough"
        (Sec. IV-C): low miss rate, smallest LLC reference count first.
        A grown group that is still missing hard keeps its ways — taking
        them back would just re-trigger Core Demand next interval."""
        alloc = self.allocator
        if self.manage_ddio and not alloc.ddio_at_min:
            alloc.shrink_ddio()
            return "ddio -1"
        if not self.manage_tenant_ways:
            return "reclaim (frozen)"
        grown = [group for group, ways in alloc.group_ways.items()
                 if ways > self._group_floor(group)
                 and self._group_miss_rate(group, report) < 0.10]
        if not grown:
            return "reclaim (nothing to reclaim)"
        victim = min(grown, key=self._group_refs)
        alloc.shrink_group(victim, floor=self._group_floor(victim))
        return f"group -1 {victim}"

    # ------------------------------------------------------------------
    def _trim_pc_for_isolation(self) -> None:
        """Keep non-I/O performance-critical groups small enough to fit
        below the DDIO ways ("the tenants running PC workloads should be
        isolated from LLC ways for DDIO as much as possible",
        Sec. IV-D).  Without this, a PC group grown to its cap would be
        forced into the DDIO region when the mask widens (Fig. 10/11's
        t=15 s script)."""
        if not self.manage_tenant_ways:
            return
        alloc = self.allocator
        limit = alloc.num_ways - alloc.ddio_ways
        if limit < 1:
            return
        tenants = self.control.tenants
        for group, ways in alloc.group_ways.items():
            members = tenants.group_members(group)
            pc_non_io = all(t.is_pc and not t.is_io for t in members)
            if pc_non_io and ways > limit:
                alloc.group_ways[group] = max(self._group_floor(group),
                                              limit)

    def _apply_layout(self) -> None:
        """Plan masks for the current order/counts and program them."""
        tenants = self.control.tenants
        self._trim_pc_for_isolation()
        if self.shuffle:
            order = self._order
        else:
            order = tenants.group_names()
        layout = self.allocator.layout(order)
        pqos = self.control.pqos
        tracer = enabled_tracer()
        for tenant in tenants:
            mask = layout.mask_of(tenant)
            old = (self.layout.group_masks.get(tenant.group)
                   if self.layout else None)
            if old != mask:
                pqos.alloc_set(tenant.cos_id, mask)
                if tracer is not None:
                    tracer.instant("mask", "tenant", tenant=tenant.name,
                                   group=tenant.group, cos=tenant.cos_id,
                                   mask=mask)
        if self.manage_ddio and (
                self.layout is None or self.layout.ddio_mask != layout.ddio_mask):
            pqos.ddio_set_mask(layout.ddio_mask)
            if tracer is not None:
                tracer.instant("mask", "ddio", mask=layout.ddio_mask,
                               ways=self.allocator.ddio_ways)
        self.layout = layout

    def _finish(self, now: float, kind: ChangeKind, action: str, *,
                stable: bool, wall_start: float) -> None:
        modelled = self.control.pqos.reset_cost()
        wall = (time.perf_counter() - wall_start) * 1e6
        self.timings.append(IterationTiming(stable=stable,
                                            modelled_us=modelled,
                                            wall_us=wall))
        tracer = enabled_tracer()
        if tracer is not None:
            tracer.complete("daemon", "interval", wall / 1e6,
                            stable=stable, kind=kind.value,
                            modelled_us=modelled)
        self._log(now, kind, action)

    def _log(self, now: float, kind: ChangeKind, action: str) -> None:
        entry = IterationLog(
            time=now, state=self.state, kind=kind,
            ddio_ways=self.allocator.ddio_ways,
            group_ways=dict(self.allocator.group_ways),
            action=action)
        self.history.append(entry)
        tracer = enabled_tracer()
        if tracer is not None:
            tracer.set_sim_time(now)
            tracer.instant("daemon", "iteration", time=now,
                           state=entry.state.value, kind=kind.value,
                           ddio_ways=entry.ddio_ways,
                           group_ways=dict(entry.group_ways),
                           action=action)

    # ------------------------------------------------------------------
    # Reporting (Fig. 15)
    # ------------------------------------------------------------------
    def mean_timing_us(self, *, stable: bool,
                       modelled: bool = True) -> float:
        values = [t.modelled_us if modelled else t.wall_us
                  for t in self.timings if t.stable == stable]
        return sum(values) / len(values) if values else 0.0

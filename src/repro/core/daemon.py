"""The controller daemon shell: the paper's six-step control loop
(Sec. IV, Fig. 5), generalized over pluggable policies.

    Get Tenant Info -> LLC Alloc -> [ Poll Prof Data -> State Transition
    -> LLC Re-alloc -> Sleep ] ...

:class:`ControllerDaemon` owns everything that is *not* a decision:
iteration timing, the monitor lifecycle, tenant refresh, layout
programming (delegated to :meth:`ControlPlane.apply_layout`), and the
history/trace/metrics plumbing.  All decisions flow through a
:class:`~repro.core.policies.Policy` — observe (``pre_observe`` + the
monitor poll), decide (``decide`` returns a
:class:`~repro.core.policies.Decision`), actuate (the policy plans
:class:`~repro.core.allocator.Layout` objects and applies them via
:meth:`apply_layout`).

The daemon is backend-agnostic: it sees the machine only through a
:class:`~repro.core.control.ControlPlane`.  The simulation engine calls
:meth:`on_interval` once per sleep interval (1 s, Table II).

:class:`IATDaemon` is the paper's daemon: a :class:`ControllerDaemon`
wired to the registered IAT policy, preserving the historical attribute
surface (``state``, ``allocator``, ``params``, ...).  Its feature flags
reproduce the paper's ablations exactly:

* ``manage_ddio=False`` — Sec. VI-B footnote 3 (the Latent Contender
  experiment isolates shuffling by freezing the DDIO way count);
* ``manage_tenant_ways=False`` — Sec. VI-C ("temporarily disable IAT's
  functionality of assigning more/less LLC ways for tenants, but the
  ways ... will still be shuffled");
* ``shuffle=False`` — used by the Core-only comparison policy.

Per-iteration execution time is tracked two ways for Fig. 15: the
modelled MSR/context-switch cost from the pqos facade (comparable to
the paper's absolute microseconds) and actual wall-clock time of the
Python loop.  Stable iterations (poll only) and unstable iterations
(poll + transition + re-alloc) are recorded separately, as in Fig. 15.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs.tracer import enabled_tracer
from .allocator import Layout
from .control import ControlPlane
from .fsm import State
from .monitor import ChangeKind
from .params import IATParams

if TYPE_CHECKING:
    from .monitor import ProfMonitor, SystemSample
    from .policies import Policy


@dataclass
class IterationTiming:
    """One interval's cost, split like Fig. 15."""

    stable: bool
    modelled_us: float
    wall_us: float


@dataclass
class IterationLog:
    """What the daemon saw and did in one interval (for Fig. 11 etc.).

    ``state`` is the policy's current state object — an FSM
    :class:`~repro.core.fsm.State` for IAT, a lightweight
    :class:`~repro.core.policies.PolicyState` for other policies; both
    expose ``.value``.
    """

    time: float
    state: "State | object"
    kind: ChangeKind
    ddio_ways: int
    group_ways: "dict[str, int]"
    action: str


class ControllerDaemon:
    """Generic controller shell driving one :class:`Policy`.

    The engine's ``Controller`` protocol (``interval_s`` / ``on_start``
    / ``on_interval``) is implemented here once; policies never talk to
    the engine directly.  Per interval the daemon:

    1. resets the modelled pqos cost counter and starts the wall clock;
    2. refreshes the tenant set (re-initializing the policy on change);
    3. lets the policy observe out-of-band state (``pre_observe``);
    4. polls the policy's monitor (if it created one);
    5. asks the policy to decide and actuate;
    6. records timing, history, and trace events for the iteration.
    """

    def __init__(self, control: ControlPlane, policy: "Policy") -> None:
        self.control = control
        self.policy = policy
        policy.bind(self)
        self.interval_s = policy.interval_s
        self.monitor: "ProfMonitor | None" = None
        self.layout: "Layout | None" = None
        self.timings: "list[IterationTiming]" = []
        self.history: "list[IterationLog]" = []

    # ------------------------------------------------------------------
    # Steps 1-2: Get Tenant Info + LLC Alloc
    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        self._init_tenants(now)

    def _init_tenants(self, now: float) -> None:
        if self.monitor is not None:
            self.monitor.close()
        self.monitor = self.policy.make_monitor()
        self.layout = None
        self.policy.on_init(now)
        self._log(now, ChangeKind.FSM, "init")

    # ------------------------------------------------------------------
    # Steps 3-5: Poll Prof Data -> State Transition -> LLC Re-alloc
    # ------------------------------------------------------------------
    def on_interval(self, now: float) -> None:
        wall_start = time.perf_counter()
        control = self.control
        control.pqos.reset_cost()
        if control.refresh_tenants():
            self._init_tenants(now)
            return
        self.policy.pre_observe(now)
        sample: "SystemSample | None" = (
            self.monitor.poll() if self.monitor is not None else None)
        decision = self.policy.decide(now, sample)
        self._finish(now, decision.kind, decision.action,
                     stable=decision.stable, wall_start=wall_start)

    # ------------------------------------------------------------------
    def apply_layout(self, layout: Layout, *, set_ddio: bool = True) -> None:
        """Program ``layout``'s deltas vs the current one and adopt it."""
        self.control.apply_layout(layout, self.layout, set_ddio=set_ddio)
        self.layout = layout

    def _finish(self, now: float, kind: ChangeKind, action: str, *,
                stable: bool, wall_start: float) -> None:
        modelled = self.control.pqos.reset_cost()
        wall = (time.perf_counter() - wall_start) * 1e6
        self.timings.append(IterationTiming(stable=stable,
                                            modelled_us=modelled,
                                            wall_us=wall))
        tracer = enabled_tracer()
        if tracer is not None:
            tracer.complete("daemon", "interval", wall / 1e6,
                            stable=stable, kind=kind.value,
                            modelled_us=modelled)
        self._log(now, kind, action)

    def _log(self, now: float, kind: ChangeKind, action: str) -> None:
        alloc = getattr(self.policy, "allocator", None)
        if alloc is not None:
            ddio_ways = alloc.ddio_ways
            group_ways = dict(alloc.group_ways)
        elif self.layout is not None:
            ddio_ways = bin(self.layout.ddio_mask).count("1")
            group_ways = {group: bin(mask).count("1")
                          for group, mask in self.layout.group_masks.items()}
        else:
            ddio_ways = 0
            group_ways = {}
        entry = IterationLog(
            time=now, state=self.policy.state, kind=kind,
            ddio_ways=ddio_ways, group_ways=group_ways, action=action)
        self.history.append(entry)
        tracer = enabled_tracer()
        if tracer is not None:
            tracer.set_sim_time(now)
            tracer.instant("daemon", "iteration", time=now,
                           state=entry.state.value, kind=kind.value,
                           ddio_ways=entry.ddio_ways,
                           group_ways=dict(entry.group_ways),
                           action=action)

    # ------------------------------------------------------------------
    # Reporting (Fig. 15)
    # ------------------------------------------------------------------
    def mean_timing_us(self, *, stable: bool,
                       modelled: bool = True) -> float:
        values = [t.modelled_us if modelled else t.wall_us
                  for t in self.timings if t.stable == stable]
        return sum(values) / len(values) if values else 0.0


class IATDaemon(ControllerDaemon):
    """I/O-aware LLC management daemon (the paper's controller).

    A :class:`ControllerDaemon` driving
    :class:`~repro.core.policies.IATPolicy`, with delegating properties
    so existing callers keep reading ``daemon.state``,
    ``daemon.allocator`` etc. exactly as before the policy split.
    """

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 manage_ddio: bool = True,
                 manage_tenant_ways: bool = True,
                 shuffle: bool = True) -> None:
        from .policies import IATPolicy
        super().__init__(control, IATPolicy(
            params, manage_ddio=manage_ddio,
            manage_tenant_ways=manage_tenant_ways, shuffle=shuffle))

    @property
    def params(self) -> IATParams:
        return self.policy.params

    @property
    def state(self) -> State:
        return self.policy.state

    @property
    def allocator(self):
        return self.policy.allocator

    @property
    def manage_ddio(self) -> bool:
        return self.policy.manage_ddio

    @property
    def manage_tenant_ways(self) -> bool:
        return self.policy.manage_tenant_ways

    @property
    def shuffle(self) -> bool:
        return self.policy.shuffle

    @property
    def _order(self) -> "list[str]":
        return self.policy._order

    @property
    def _growing(self) -> "set[str]":
        return self.policy._growing

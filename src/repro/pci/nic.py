"""NIC model with SR-IOV virtual functions and DDIO DMA.

A :class:`Nic` owns a link (bandwidth cap) and one or more
:class:`VirtualFunction` endpoints, mirroring the paper's two
tenant-device models (Sec. II-C):

* *aggregation*: one function, whose ring is polled by a virtual-switch
  workload (OVS) which then forwards to tenants in software;
* *slicing*: several VFs, each ring polled directly by a tenant.

DMA: when a packet arrives, the NIC writes ``ceil(size / line)`` cache
lines of the target ring buffer through the DDIO path —
``SlicedLLC.ddio_write`` — producing DDIO hit (write update) or DDIO
miss (write allocate, with possible dirty eviction to DRAM).  Those
events feed the CHA uncore counters that IAT polls.

Address-space management: each NIC claims a large region and hands out
disjoint sub-regions to its rings, so distinct rings never alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache.llc import DDIO_OWNER
from ..obs.tracer import current_tracer
from .ring import DEFAULT_RING_ENTRIES, MBUF_STRIDE, DescRing

#: Ethernet per-packet overhead used for line-rate math (preamble + IFG),
#: as in the paper's Sec. II-B arithmetic (64B + 20B at 100 Gb).
WIRE_OVERHEAD_BYTES = 20


def line_rate_pps(gbps: float, packet_size: int) -> float:
    """Packets/second at ``gbps`` line rate for a given packet size."""
    if packet_size <= 0:
        raise ValueError("packet size must be positive")
    return gbps * 1e9 / 8.0 / (packet_size + WIRE_OVERHEAD_BYTES)


@dataclass
class VirtualFunction:
    """One SR-IOV VF: an Rx ring plus drop/delivery statistics.

    The last two fields implement the paper's Sec. VII "future DDIO
    consideration" extensions, disabled by default:

    * ``ddio_mask_override`` — *device-aware DDIO*: this VF's inbound
      writes allocate only into its own way mask instead of the global
      one ("assign different LLC ways to different PCIe devices, or
      even different queues in a single device, just like what CAT does
      on CPU cores").
    * ``header_only_ddio`` — *application-aware DDIO*: only the first
      cacheline (the packet header) is injected into the LLC; the
      payload goes straight to memory ("an application may enable DDIO
      only for packet header, while leaving the payload to the memory").
    """

    vf_id: int
    rx_ring: DescRing
    name: str = ""
    ddio_mask_override: "int | None" = None
    header_only_ddio: bool = False
    #: Per-VF DDIO statistics (write updates / write allocates).  The
    #: real CHA counters cannot attribute events to devices (paper
    #: Sec. IV-B: "chip-wide metrics ... cannot distinguish"); these are
    #: simulator-side diagnostics used by the Sec. VII extension study.
    ddio_hits: int = 0
    ddio_misses: int = 0

    @property
    def drops(self) -> int:
        return self.rx_ring.dropped

    @property
    def delivered(self) -> int:
        return self.rx_ring.enqueued

    @property
    def ddio_hit_rate(self) -> float:
        total = self.ddio_hits + self.ddio_misses
        return self.ddio_hits / total if total else 0.0


@dataclass
class Nic:
    """A physical NIC: link capacity and a set of VFs.

    ``region_base``/``region_size`` delimit this NIC's buffer address
    space; rings are carved from it sequentially.
    """

    name: str
    link_gbps: float
    region_base: int
    region_size: int = 1 << 30
    vfs: "list[VirtualFunction]" = field(default_factory=list)
    _next_offset: int = 0

    def add_vf(self, *, entries: int = DEFAULT_RING_ENTRIES,
               mbuf_stride: int = MBUF_STRIDE, pool_factor: int = 2,
               name: str = "") -> VirtualFunction:
        """Create a VF with its own Rx ring in a fresh buffer sub-region.

        ``pool_factor=2`` reflects the DPDK mempool being larger than
        the ring (see :class:`DescRing`).
        """
        footprint = entries * mbuf_stride * pool_factor
        if self._next_offset + footprint > self.region_size:
            raise ValueError(f"NIC {self.name}: buffer region exhausted")
        ring = DescRing(entries, base_addr=self.region_base + self._next_offset,
                        mbuf_stride=mbuf_stride, pool_factor=pool_factor)
        self._next_offset += footprint
        vf = VirtualFunction(vf_id=len(self.vfs), rx_ring=ring,
                             name=name or f"{self.name}.vf{len(self.vfs)}")
        self.vfs.append(vf)
        return vf

    def dma_packet(self, vf: VirtualFunction, size: int, flow_id: int,
                   llc, ddio_mask: int, mem, uncore, now: float = 0.0) -> bool:
        """Deliver one inbound packet into ``vf``'s ring through DDIO.

        Returns True if enqueued, False if the ring was full (packet
        drop).  On success, writes each touched cacheline via DDIO and
        records hit/miss in ``uncore`` plus writeback traffic in ``mem``.

        Honors the VF's Sec. VII extension knobs: a per-device way-mask
        override, and header-only injection (payload lines bypass the
        LLC and go straight to memory, like a DDIO-disabled write).
        """
        return self.dma_burst(vf, [size], [flow_id], llc, ddio_mask, mem,
                              uncore, now) == 1

    def dma_burst(self, vf: VirtualFunction, sizes, flow_ids, llc,
                  ddio_mask: int, mem, uncore, now: float = 0.0,
                  tracer=None) -> int:
        """Deliver a burst of inbound packets into ``vf``'s ring.

        Posts the whole burst with one ring operation (drops are counted
        by the ring when it is full), then issues all touched cachelines
        as one interleaved DDIO batch — per-packet line order preserved —
        with aggregate uncore/memory accounting.  Equivalent to calling
        :meth:`dma_packet` once per packet; the per-VF extension knobs
        (``ddio_mask_override``, ``header_only_ddio``) are resolved once
        per burst instead of once per line.  Callers on the quantum loop
        pass their cached ``tracer`` so the disabled-tracing path costs
        one attribute load; ``tracer.enabled`` is itself cached in a
        local, so the sampled/disabled path pays a single flag read per
        burst.  Returns the number of packets enqueued.
        """
        if tracer is None:
            tracer = current_tracer()
        traced = tracer.enabled
        t0 = tracer.clock() if traced else 0.0
        # Hoisted Sec. VII knobs: resolved once for the whole burst.
        if vf.ddio_mask_override is not None:
            ddio_mask = vf.ddio_mask_override
        header_only = vf.header_only_ddio
        sizes = np.asarray(sizes, dtype=np.int64)
        buf_addrs = vf.rx_ring.post_batch(sizes, flow_ids, now)
        accepted = buf_addrs.shape[0]
        if accepted == 0:
            return 0
        line = llc.geometry.line_size
        nlines = -(-sizes[:accepted] // line)
        total = int(nlines.sum())
        # Flatten to per-line addresses, packet-major, line order within
        # each packet preserved: base[k] + line * within-packet index.
        # Fixed-size bursts (the common case) flatten by broadcasting the
        # line-offset vector against the bases, skipping the
        # cumsum/repeat chain needed for ragged line counts.
        c0 = int(nlines[0])
        if bool((nlines == c0).all()):
            offsets = np.arange(c0, dtype=np.int64) * line
            addrs = (buf_addrs[:, None] + offsets).reshape(-1)
            within = None
        else:
            starts = np.concatenate(([0], np.cumsum(nlines)[:-1]))
            within = (np.arange(total, dtype=np.int64)
                      - np.repeat(starts, nlines))
            addrs = np.repeat(buf_addrs, nlines) + within * line
        if not header_only:
            out = llc.ddio_write_batch(addrs, ddio_mask)
            uncore.record_ddio_batch(addrs, out.hit)
            hits = out.hits
            vf.ddio_hits += hits
            vf.ddio_misses += out.misses
            if out.writebacks:
                mem.add_write(line * out.writebacks)
            if traced:
                tracer.complete("dma", "burst", tracer.clock() - t0,
                                vf=vf.name, packets=accepted, lines=total,
                                ddio_hits=hits, ddio_misses=total - hits)
            return accepted
        # Header-only DDIO: the first line of each packet goes through
        # the DDIO path; payload lines bypass the cache (update in place
        # if cached, else the write lands in DRAM without allocating).
        if within is None:
            header = np.zeros(total, dtype=bool)
            header[::c0] = True
        else:
            header = within == 0
        out = llc.access_batch(addrs, np.where(header, ddio_mask, 0),
                               write=True, owner=DDIO_OWNER,
                               allocate=header)
        header_hit = out.hit[header]
        uncore.record_ddio_batch(addrs[header], header_hit)
        ddio_hits = int(np.count_nonzero(header_hit))
        vf.ddio_hits += ddio_hits
        vf.ddio_misses += int(header.sum()) - ddio_hits
        writebacks = int(np.count_nonzero(out.writeback))
        if writebacks:
            mem.add_write(line * writebacks)
        payload_misses = int(np.count_nonzero(~out.hit[~header]))
        if payload_misses:
            mem.add_write(line * payload_misses)
        if traced:
            tracer.complete("dma", "burst", tracer.clock() - t0,
                            vf=vf.name, packets=accepted, lines=total,
                            ddio_hits=ddio_hits,
                            ddio_misses=int(header.sum()) - ddio_hits)
        return accepted

"""Descriptor rings: the Rx/Tx buffer structure behind the Leaky DMA problem.

A DPDK-style Rx ring has a fixed number of descriptor *entries*, each
pointing at a packet buffer (mbuf).  DPDK mempools recycle mbufs, so the
memory footprint the ring exerts on the LLC is approximately::

    entries * mbuf_stride      (mbuf_stride = 2 KiB by default)

though DDIO only *touches* ``ceil(packet_bytes / 64)`` lines per packet.
When the in-flight footprint exceeds the capacity of the DDIO ways,
buffers written by the NIC get evicted to DRAM before the core consumes
them — the "Leaky DMA" problem (paper Sec. III-A).  This emerges
naturally here because each ring slot has a stable address that the DMA
writes and the consumer later reads through the simulated LLC.

The ring itself is a simple bounded FIFO of packet records; address
generation for a slot is deterministic so producer and consumer touch
identical cachelines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

#: Default ring depth used throughout the paper's evaluation (Sec. VI-A).
DEFAULT_RING_ENTRIES = 1024

#: DPDK's default mbuf size: one fixed-stride buffer per descriptor.
MBUF_STRIDE = 2048


@dataclass(frozen=True)
class PacketRecord:
    """One enqueued packet: wire size, flow id, and its buffer address."""

    size: int
    flow_id: int
    buf_addr: int
    arrival: float = 0.0


class DescRing:
    """Bounded Rx/Tx descriptor ring with recycled, fixed-stride buffers.

    ``base_addr`` places the ring's buffer region in the (simulated)
    physical address space; distinct rings must use disjoint regions.

    ``pool_factor`` models the DPDK mempool indirection: descriptors
    point at mbufs drawn from a pool larger than the ring itself
    (l3fwd's default mempool is several times its Rx ring), so the
    buffer addresses the DMA engine touches cycle over
    ``entries * pool_factor`` distinct slots.  This is what makes the
    in-flight cache footprint exceed ``entries * mbuf_stride`` on real
    systems.  Virtio rings have no such indirection (``pool_factor=1``).
    """

    def __init__(self, entries: int = DEFAULT_RING_ENTRIES, *,
                 base_addr: int, mbuf_stride: int = MBUF_STRIDE,
                 pool_factor: int = 1) -> None:
        if entries < 1:
            raise ValueError("ring needs at least one entry")
        if entries & (entries - 1):
            raise ValueError("ring entries must be a power of two")
        if pool_factor < 1:
            raise ValueError("pool_factor must be >= 1")
        self.entries = entries
        self.base_addr = base_addr
        self.mbuf_stride = mbuf_stride
        self.pool_factor = pool_factor
        self._queue: "deque[PacketRecord]" = deque()
        self._head = 0          # next slot index for an incoming packet
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def space(self) -> int:
        return self.entries - len(self._queue)

    @property
    def pool_slots(self) -> int:
        return self.entries * self.pool_factor

    @property
    def footprint_bytes(self) -> int:
        """Worst-case buffer-region footprint of this ring's pool."""
        return self.pool_slots * self.mbuf_stride

    def slot_addr(self, slot: int) -> int:
        return self.base_addr + (slot % self.pool_slots) * self.mbuf_stride

    # ------------------------------------------------------------------
    def post(self, size: int, flow_id: int = 0, now: float = 0.0) -> "PacketRecord | None":
        """Enqueue one inbound packet; returns its record, or None on drop."""
        if len(self._queue) >= self.entries:
            self.dropped += 1
            return None
        record = PacketRecord(size=size, flow_id=flow_id,
                              buf_addr=self.slot_addr(self._head), arrival=now)
        self._head += 1
        self._queue.append(record)
        self.enqueued += 1
        return record

    def peek(self) -> "PacketRecord | None":
        return self._queue[0] if self._queue else None

    def consume(self) -> "PacketRecord | None":
        """Dequeue the oldest packet (consumer side)."""
        if not self._queue:
            return None
        self.dequeued += 1
        return self._queue.popleft()

    def reset_counters(self) -> None:
        self.enqueued = self.dequeued = self.dropped = 0

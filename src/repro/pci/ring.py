"""Descriptor rings: the Rx/Tx buffer structure behind the Leaky DMA problem.

A DPDK-style Rx ring has a fixed number of descriptor *entries*, each
pointing at a packet buffer (mbuf).  DPDK mempools recycle mbufs, so the
memory footprint the ring exerts on the LLC is approximately::

    entries * mbuf_stride      (mbuf_stride = 2 KiB by default)

though DDIO only *touches* ``ceil(packet_bytes / 64)`` lines per packet.
When the in-flight footprint exceeds the capacity of the DDIO ways,
buffers written by the NIC get evicted to DRAM before the core consumes
them — the "Leaky DMA" problem (paper Sec. III-A).  This emerges
naturally here because each ring slot has a stable address that the DMA
writes and the consumer later reads through the simulated LLC.

The ring stores its queue as structure-of-arrays circular buffers so
producers and consumers can move whole bursts with array ops
(:meth:`DescRing.post_batch` / :meth:`DescRing.peek_batch` /
:meth:`DescRing.consume_batch`); the scalar :meth:`post` / :meth:`peek` /
:meth:`consume` API is preserved on top of the same storage and is
bit-for-bit equivalent.  Address generation for a slot is deterministic
so producer and consumer touch identical cachelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default ring depth used throughout the paper's evaluation (Sec. VI-A).
DEFAULT_RING_ENTRIES = 1024

#: DPDK's default mbuf size: one fixed-stride buffer per descriptor.
MBUF_STRIDE = 2048


@dataclass(frozen=True)
class PacketRecord:
    """One enqueued packet: wire size, flow id, and its buffer address."""

    size: int
    flow_id: int
    buf_addr: int
    arrival: float = 0.0


class DescRing:
    """Bounded Rx/Tx descriptor ring with recycled, fixed-stride buffers.

    ``base_addr`` places the ring's buffer region in the (simulated)
    physical address space; distinct rings must use disjoint regions.

    ``pool_factor`` models the DPDK mempool indirection: descriptors
    point at mbufs drawn from a pool larger than the ring itself
    (l3fwd's default mempool is several times its Rx ring), so the
    buffer addresses the DMA engine touches cycle over
    ``entries * pool_factor`` distinct slots.  This is what makes the
    in-flight cache footprint exceed ``entries * mbuf_stride`` on real
    systems.  Virtio rings have no such indirection (``pool_factor=1``).
    """

    __slots__ = ("entries", "base_addr", "mbuf_stride", "pool_factor",
                 "enqueued", "dequeued", "dropped", "_mask", "_head",
                 "_rd", "_count", "_size", "_flow", "_addr", "_arrival")

    def __init__(self, entries: int = DEFAULT_RING_ENTRIES, *,
                 base_addr: int, mbuf_stride: int = MBUF_STRIDE,
                 pool_factor: int = 1) -> None:
        if entries < 1:
            raise ValueError("ring needs at least one entry")
        if entries & (entries - 1):
            raise ValueError("ring entries must be a power of two")
        if pool_factor < 1:
            raise ValueError("pool_factor must be >= 1")
        self.entries = entries
        self.base_addr = base_addr
        self.mbuf_stride = mbuf_stride
        self.pool_factor = pool_factor
        # SoA circular storage.  ``_rd`` is the monotonically increasing
        # read counter; the queue occupies positions ``_rd .. _rd+_count``
        # (mod entries).  ``_head`` counts accepted posts only — it is the
        # slot index that feeds the deterministic buffer-address recycling.
        self._mask = entries - 1
        self._head = 0
        self._rd = 0
        self._count = 0
        self._size = np.zeros(entries, dtype=np.int64)
        self._flow = np.zeros(entries, dtype=np.int64)
        self._addr = np.zeros(entries, dtype=np.int64)
        self._arrival = np.zeros(entries, dtype=np.float64)
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._count

    @property
    def space(self) -> int:
        return self.entries - self._count

    @property
    def pool_slots(self) -> int:
        return self.entries * self.pool_factor

    @property
    def footprint_bytes(self) -> int:
        """Worst-case buffer-region footprint of this ring's pool."""
        return self.pool_slots * self.mbuf_stride

    def slot_addr(self, slot: int) -> int:
        return self.base_addr + (slot % self.pool_slots) * self.mbuf_stride

    # ------------------------------------------------------------------
    def post(self, size: int, flow_id: int = 0, now: float = 0.0) -> "PacketRecord | None":
        """Enqueue one inbound packet; returns its record, or None on drop."""
        if self._count >= self.entries:
            self.dropped += 1
            return None
        addr = self.slot_addr(self._head)
        idx = (self._rd + self._count) & self._mask
        self._size[idx] = size
        self._flow[idx] = flow_id
        self._addr[idx] = addr
        self._arrival[idx] = now
        self._head += 1
        self._count += 1
        self.enqueued += 1
        return PacketRecord(size=size, flow_id=flow_id, buf_addr=addr,
                            arrival=now)

    def post_batch(self, sizes, flow_ids, now=0.0) -> "np.ndarray":
        """Enqueue a burst; returns the buffer addresses of the packets
        accepted (always a prefix of the burst — nothing consumes the
        ring concurrently, so once it is full the rest of the burst
        drops).  Drop/occupancy accounting is identical to calling
        :meth:`post` per packet.  ``now`` may be a scalar or a per-packet
        array of arrival stamps.
        """
        n = len(sizes)
        accepted = min(n, self.entries - self._count)
        if accepted < n:
            self.dropped += n - accepted
        if accepted == 0:
            return np.empty(0, dtype=np.int64)
        slots = self._head + np.arange(accepted, dtype=np.int64)
        addrs = self.base_addr + (slots % self.pool_slots) * self.mbuf_stride
        idx = (self._rd + self._count + np.arange(accepted)) & self._mask
        self._size[idx] = sizes[:accepted]
        self._flow[idx] = flow_ids[:accepted]
        self._addr[idx] = addrs
        self._arrival[idx] = now if np.isscalar(now) else now[:accepted]
        self._head += accepted
        self._count += accepted
        self.enqueued += accepted
        return addrs

    def peek(self) -> "PacketRecord | None":
        if not self._count:
            return None
        idx = self._rd & self._mask
        return PacketRecord(size=int(self._size[idx]),
                            flow_id=int(self._flow[idx]),
                            buf_addr=int(self._addr[idx]),
                            arrival=float(self._arrival[idx]))

    def peek_batch(self, limit: "int | None" = None):
        """Oldest ``limit`` packets (default: all) as parallel arrays
        ``(sizes, flows, buf_addrs, arrivals)`` without consuming them."""
        k = self._count if limit is None else min(limit, self._count)
        idx = (self._rd + np.arange(k)) & self._mask
        return (self._size[idx], self._flow[idx], self._addr[idx],
                self._arrival[idx])

    def consume(self) -> "PacketRecord | None":
        """Dequeue the oldest packet (consumer side)."""
        record = self.peek()
        if record is None:
            return None
        self._rd += 1
        self._count -= 1
        self.dequeued += 1
        return record

    def consume_batch(self, k: int) -> None:
        """Dequeue the ``k`` oldest packets (the caller already holds
        their fields from :meth:`peek_batch`)."""
        if k > self._count:
            raise ValueError(f"consume_batch({k}) with {self._count} queued")
        self._rd += k
        self._count -= k
        self.dequeued += k

    def reset_counters(self) -> None:
        self.enqueued = self.dequeued = self.dropped = 0

"""PCIe device models: NICs, SR-IOV virtual functions, descriptor rings."""

from .nic import WIRE_OVERHEAD_BYTES, Nic, VirtualFunction, line_rate_pps
from .ring import DEFAULT_RING_ENTRIES, MBUF_STRIDE, DescRing, PacketRecord

__all__ = [
    "DEFAULT_RING_ENTRIES", "DescRing", "MBUF_STRIDE", "Nic", "PacketRecord",
    "VirtualFunction", "WIRE_OVERHEAD_BYTES", "line_rate_pps",
]

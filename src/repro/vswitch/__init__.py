"""Aggregation-model virtual switch (OVS-DPDK style)."""

from .flowtable import (EMC_ENTRIES, FlowTables, LookupResult,
                        MEGAFLOW_PROBES)
from .ovs import OvsDataplane

__all__ = ["EMC_ENTRIES", "FlowTables", "LookupResult", "MEGAFLOW_PROBES",
           "OvsDataplane"]

"""OVS lookup structures: exact-match cache (EMC) and megaflow table.

Open vSwitch's userspace datapath looks packets up in a small
exact-match cache first; misses fall back to the (slower, larger)
wildcard megaflow classifier (Pfaff et al., NSDI'15).  The paper's
Fig. 9 leans on exactly this: "with more flows, the IPC and CPP
inevitably worsen since OVS's design leads to more (slower) wildcarding
lookups instead of pure (faster) exact match lookups", and the growing
flow table demands more LLC ways.

Both tables here are *real* memory regions probed through the simulated
LLC, so their footprint and thrash behaviour are emergent:

* EMC: direct-mapped, ``entries`` slots of one line each; a collision
  evicts the previous flow (tag replacement), so populations larger
  than the EMC thrash it naturally.
* Megaflow: hash-addressed region of two-line entries probed a few
  times per lookup (tuple-space search).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.base import AccessPlan, CorePort, VectorPlan

#: OVS default EMC size.
EMC_ENTRIES = 8192
EMC_ENTRY_BYTES = 64

MEGAFLOW_ENTRY_BYTES = 128
#: Average subtable probes per megaflow lookup (tuple-space search).
MEGAFLOW_PROBES = 3

#: Cycle cost beyond memory accesses.
EMC_HIT_CYCLES = 45.0
MEGAFLOW_CYCLES = 180.0


@dataclass
class LookupResult:
    emc_hit: bool
    cycles: float


class FlowTables:
    """EMC + megaflow lookup path bound to one address region."""

    def __init__(self, region_base: int, *, emc_entries: int = EMC_ENTRIES,
                 megaflow_capacity: int = 1 << 20) -> None:
        if emc_entries < 1 or megaflow_capacity < 1:
            raise ValueError("table sizes must be positive")
        self.emc_entries = emc_entries
        self.megaflow_capacity = megaflow_capacity
        self._emc_tags = np.full(emc_entries, -1, dtype=np.int64)
        self._emc_base = region_base
        self._mega_base = region_base + emc_entries * EMC_ENTRY_BYTES
        self.emc_hits = 0
        self.emc_misses = 0
        # COW journal for speculative execution (see SlicedLLC.snapshot):
        # pre-images of overwritten EMC tags, replayed newest-first.
        self._journal: "list[tuple] | None" = None
        self._snap: "tuple[int, int] | None" = None

    # -- speculation support ---------------------------------------------
    def snapshot(self) -> None:
        """Start journaling EMC mutations for a possible rollback."""
        if self._journal is not None:
            raise RuntimeError("a FlowTables snapshot is already active")
        self._journal = []
        self._snap = (self.emc_hits, self.emc_misses)

    def rollback(self) -> None:
        """Undo every EMC mutation since :meth:`snapshot`."""
        journal = self._journal
        if journal is None:
            raise RuntimeError("rollback() without an active snapshot")
        tags = self._emc_tags
        for slots, pre in reversed(journal):
            tags[slots] = pre
        self.emc_hits, self.emc_misses = self._snap
        self._journal = None
        self._snap = None

    def commit(self) -> None:
        """Drop the journal, keeping the speculative mutations."""
        if self._journal is None:
            raise RuntimeError("commit() without an active snapshot")
        self._journal = None
        self._snap = None

    @property
    def megaflow_bytes(self) -> int:
        return self.megaflow_capacity * MEGAFLOW_ENTRY_BYTES

    def lookup(self, port: CorePort, flow_id: int) -> LookupResult:
        """Look one packet up, issuing the table's memory accesses."""
        slot = flow_id % self.emc_entries
        cycles = port.access(self._emc_base + slot * EMC_ENTRY_BYTES)
        if self._emc_tags[slot] == flow_id:
            self.emc_hits += 1
            return LookupResult(True, cycles + EMC_HIT_CYCLES)
        # EMC miss: wildcard lookup, then install into the EMC slot.
        self.emc_misses += 1
        if self._journal is not None:
            self._journal.append((slot, int(self._emc_tags[slot])))
        self._emc_tags[slot] = flow_id
        entry = self._mega_base + (flow_id % self.megaflow_capacity) \
            * MEGAFLOW_ENTRY_BYTES
        for probe in range(MEGAFLOW_PROBES):
            cycles += port.access(entry + (probe % 2) * 64)
        cycles += port.access(self._emc_base + slot * EMC_ENTRY_BYTES,
                              write=True)
        return LookupResult(False, cycles + MEGAFLOW_CYCLES)

    def plan_lookup(self, plan: AccessPlan, flow_id: int,
                    pkt: int) -> float:
        """Batched twin of :meth:`lookup`: appends the same accesses (in
        the same order, with identical EMC state updates) to ``plan`` and
        returns the lookup's fixed cycle cost."""
        slot = flow_id % self.emc_entries
        plan.add(self._emc_base + slot * EMC_ENTRY_BYTES, 1, pkt=pkt)
        if self._emc_tags[slot] == flow_id:
            self.emc_hits += 1
            return EMC_HIT_CYCLES
        self.emc_misses += 1
        if self._journal is not None:
            self._journal.append((slot, int(self._emc_tags[slot])))
        self._emc_tags[slot] = flow_id
        entry = self._mega_base + (flow_id % self.megaflow_capacity) \
            * MEGAFLOW_ENTRY_BYTES
        for probe in range(MEGAFLOW_PROBES):
            plan.add(entry + (probe % 2) * 64, 1, pkt=pkt)
        plan.add(self._emc_base + slot * EMC_ENTRY_BYTES, 1, write=True,
                 pkt=pkt)
        return MEGAFLOW_CYCLES

    def lookup_chunk(self, plan: VectorPlan, flow_ids: "np.ndarray",
                     pkts: "np.ndarray") -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized twin of :meth:`plan_lookup` over a whole chunk.

        Sequential EMC semantics are reproduced with a prev-occurrence
        scan: packet ``p`` hits iff the tag its slot holds just before
        ``p`` equals its flow — that tag is the flow of the last earlier
        same-slot packet in the chunk, else the stored tag (every lookup
        leaves the slot holding its own flow, hit or miss).  Returns the
        per-packet ``(hit, fixed_cycles)`` arrays; plan stages use ranks
        1 (EMC read), 2-4 (megaflow probes), 5 (EMC install write).
        """
        k = flow_ids.shape[0]
        tags = self._emc_tags
        f0 = int(flow_ids[0])
        if bool((flow_ids == f0).all()):
            # Single-flow chunk (Fig. 8 drives one flow per port): each
            # packet after the first hits the slot its predecessor just
            # filled, so only the stored tag decides the first packet —
            # no per-slot argsort needed.
            s0 = f0 % self.emc_entries
            hit = np.ones(k, dtype=bool)
            hit[0] = int(tags[s0]) == f0
            touched = np.asarray([s0], dtype=np.int64)
            if self._journal is not None:
                self._journal.append((touched, tags[touched]))
            tags[s0] = f0
            nhits = int(np.count_nonzero(hit))
            self.emc_hits += nhits
            self.emc_misses += k - nhits
            emc_addr = self._emc_base + s0 * EMC_ENTRY_BYTES
            emc_addrs = np.full(k, emc_addr, dtype=np.int64)
            plan.add_batch(emc_addrs, 1, pkts=pkts, rank=1)
            if k > nhits:
                entry = self._mega_base \
                    + (f0 % self.megaflow_capacity) * MEGAFLOW_ENTRY_BYTES
                entries = np.asarray([entry], dtype=np.int64)
                mpkts = pkts[:1]
                plan.add_batch(entries, 1, pkts=mpkts, rank=2)
                plan.add_batch(entries + 64, 1, pkts=mpkts, rank=3)
                plan.add_batch(entries, 1, pkts=mpkts, rank=4)
                plan.add_batch(emc_addrs[:1], 1, pkts=mpkts, rank=5,
                               write=True)
            return hit, np.where(hit, EMC_HIT_CYCLES, MEGAFLOW_CYCLES)
        slots = flow_ids % self.emc_entries
        order = np.argsort(slots, kind="stable")
        so = slots[order]
        fo = flow_ids[order]
        first = np.empty(k, dtype=bool)
        first[0] = True
        first[1:] = so[1:] != so[:-1]
        prev = np.empty(k, dtype=np.int64)
        prev[1:] = fo[:-1]
        prev[first] = tags[so[first]]
        hit = np.empty(k, dtype=bool)
        hit[order] = prev == fo
        # Final tag of each touched slot is its last packet's flow; index
        # each slot once so the fancy assignment is well defined.
        last = np.empty(k, dtype=bool)
        last[:-1] = so[1:] != so[:-1]
        last[-1] = True
        touched = so[last]
        if self._journal is not None:
            # Fancy-index read is a copy, so this is a true pre-image.
            self._journal.append((touched, tags[touched]))
        tags[touched] = fo[last]
        nhits = int(np.count_nonzero(hit))
        self.emc_hits += nhits
        self.emc_misses += k - nhits
        emc_addrs = self._emc_base + slots * EMC_ENTRY_BYTES
        plan.add_batch(emc_addrs, 1, pkts=pkts, rank=1)
        missed = np.nonzero(~hit)[0]
        if missed.shape[0]:
            entries = self._mega_base + (flow_ids[missed]
                                         % self.megaflow_capacity) \
                * MEGAFLOW_ENTRY_BYTES
            mpkts = pkts[missed]
            # Tuple-space probes alternate two lines: +0, +64, +0.
            plan.add_batch(entries, 1, pkts=mpkts, rank=2)
            plan.add_batch(entries + 64, 1, pkts=mpkts, rank=3)
            plan.add_batch(entries, 1, pkts=mpkts, rank=4)
            plan.add_batch(emc_addrs[missed], 1, pkts=mpkts, rank=5,
                           write=True)
        return hit, np.where(hit, EMC_HIT_CYCLES, MEGAFLOW_CYCLES)

    @property
    def emc_hit_rate(self) -> float:
        total = self.emc_hits + self.emc_misses
        return self.emc_hits / total if total else 0.0

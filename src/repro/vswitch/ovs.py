"""OVS-DPDK dataplane model for the aggregation tenant-device model.

The switch polls the physical NICs' Rx rings, classifies each packet
(EMC/megaflow, :mod:`.flowtable`), and forwards it into the destination
tenant's virtio ring by copying the buffer — reads through the switch's
CAT mask from the DDIO-written NIC buffer, writes into the virtio
region (allocating in the switch's own ways, like real core writes).

Simplification documented per DESIGN.md: the tenant->NIC return path is
charged as a fixed per-packet cost on the switch without a second buffer
copy (DPDK vhost zero-copy Tx); the reproduction's figures depend on the
Rx path, where DDIO lives.

Fig. 8's metrics come straight from here: IPC from the switch cores'
counters, CPP (cycles per packet) from :attr:`cycles_per_packet`.
"""

from __future__ import annotations

import numpy as np

from ..net.packet import lines_per_packet
from ..pci.ring import DescRing, PacketRecord
from ..workloads.base import AccessPlan, CorePort, VectorPlan
from ..workloads.netbase import BUFFER_MLP, RingConsumer
from .flowtable import MEGAFLOW_CYCLES, MEGAFLOW_PROBES, FlowTables

#: Fixed per-packet cost: vhost descriptor handling + return-path Tx.
OVS_INSTRUCTIONS = 450.0
OVS_CYCLES = 150.0


class OvsDataplane(RingConsumer):
    """Poll NIC rings, classify, and forward to per-tenant virtio rings.

    ``routes`` maps a NIC ring's index in ``rings`` to its destination —
    one virtio :class:`DescRing` (the paper's "NIC0->Container0" rules)
    or a list of rings that the port's flows are spread over round-robin
    by flow id (the paper's three-to-five-container variations share the
    two physical ports among more containers).
    """

    def __init__(self, name: str, rings: "list[DescRing]",
                 routes: "dict[int, DescRing | list[DescRing]]", *,
                 emc_entries: int = 8192,
                 core_freq_hz: float = 2.3e9) -> None:
        super().__init__(name, rings, core_freq_hz=core_freq_hz)
        missing = set(range(len(rings))) - set(routes)
        if missing:
            raise ValueError(f"no route for NIC ring(s) {sorted(missing)}")
        self.routes = {index: list(dest) if isinstance(dest, (list, tuple))
                       else [dest]
                       for index, dest in routes.items()}
        for index, dests in self.routes.items():
            if not dests:
                raise ValueError(f"route {index} has no destinations")
        self._emc_entries = emc_entries
        self.tables: "FlowTables | None" = None
        self.forwarded = 0
        self.output_drops = 0
        self._consumed_from = 0  # ring index of the packet in flight
        # Destination rings deduplicated (routes may share a ring), with
        # per-source-ring id vectors for array routing.
        self._dest_rings: "list[DescRing]" = []
        dest_id = {}
        self._route_ids = {}
        for index, dests in sorted(self.routes.items()):
            ids = []
            for dest in dests:
                key = id(dest)
                if key not in dest_id:
                    dest_id[key] = len(self._dest_rings)
                    self._dest_rings.append(dest)
                ids.append(dest_id[key])
            self._route_ids[index] = np.asarray(ids, dtype=np.int64)

    def on_bind(self) -> None:
        self.tables = FlowTables(self.region_base,
                                 emc_entries=self._emc_entries)

    batchable = True

    # The base class round-robins rings; remember which ring the current
    # packet came from so we can route it.
    def _next_packet(self) -> "PacketRecord | None":
        for offset in range(len(self.rings)):
            idx = (self._ring_cursor + offset) % len(self.rings)
            record = self.rings[idx].consume()
            if record is not None:
                self._ring_cursor = (idx + 1) % len(self.rings)
                self._consumed_from = idx
                return record
        return None

    def packet_cost(self, port: CorePort, record: PacketRecord,
                    now: float) -> "tuple[float, float]":
        lookup = self.tables.lookup(port, record.flow_id)
        cycles = OVS_CYCLES + lookup.cycles
        dests = self.routes[self._consumed_from]
        dest = dests[record.flow_id % len(dests)]
        # Preserve the NIC arrival stamp so the tenant's latency is
        # end-to-end, not virtio-ring-local.
        out = dest.post(record.size, record.flow_id, record.arrival)
        if out is None:
            self.output_drops += 1
            return OVS_INSTRUCTIONS, cycles
        # Copy payload into the virtio buffer through the switch's mask
        # (streaming stores overlap, hence the buffer MLP).
        addr = out.buf_addr
        for _ in range(lines_per_packet(record.size)):
            cycles += port.access(addr, write=True, mlp=BUFFER_MLP)
            addr += 64
        self.forwarded += 1
        return OVS_INSTRUCTIONS, cycles

    def plan_packet(self, plan: AccessPlan, port: CorePort,
                    record: PacketRecord, ring_idx: int, pkt: int,
                    now: float) -> "tuple[float, float]":
        cycles = OVS_CYCLES + self.tables.plan_lookup(plan, record.flow_id,
                                                      pkt)
        dests = self.routes[ring_idx]
        dest = dests[record.flow_id % len(dests)]
        out = dest.post(record.size, record.flow_id, record.arrival)
        if out is None:
            self.output_drops += 1
            return OVS_INSTRUCTIONS, cycles
        plan.add(out.buf_addr, lines_per_packet(record.size), write=True,
                 mlp=BUFFER_MLP, pkt=pkt)
        self.forwarded += 1
        return OVS_INSTRUCTIONS, cycles

    def worst_cost_cycles(self, record: PacketRecord,
                          miss_cycles: float) -> float:
        # Worst case is the EMC-miss path: EMC read, megaflow probes,
        # EMC install write, plus the forwarding copy all missing.
        lookup = (2 + MEGAFLOW_PROBES) * miss_cycles + MEGAFLOW_CYCLES
        copy = lines_per_packet(record.size) * miss_cycles / BUFFER_MLP
        return OVS_CYCLES + lookup + copy

    supports_vector = True

    def plan_chunk(self, plan: VectorPlan, port: CorePort, pkts, sizes,
                   flows, addrs, arrivals, rings, now):
        k = pkts.shape[0]
        hit, lookup_fixed = self.tables.lookup_chunk(plan, flows, pkts)
        fixed = OVS_CYCLES + lookup_fixed
        nlines = -(-sizes // 64)
        ndest = len(self._dest_rings)
        if ndest == 1:
            # Every route lands on the same ring: forward the whole
            # chunk in order without building a destination vector.
            self._forward(plan, self._dest_rings[0], pkts, sizes, flows,
                          arrivals, nlines)
            return OVS_INSTRUCTIONS * k, fixed
        dest = np.empty(k, dtype=np.int64)
        if rings is None:
            ids = self._route_ids[0]
            dest[:] = ids[0] if ids.shape[0] == 1 \
                else ids[flows % ids.shape[0]]
        else:
            for index in range(len(self.rings)):
                mask = rings == index
                if not mask.any():
                    continue
                ids = self._route_ids[index]
                dest[mask] = ids[0] if ids.shape[0] == 1 \
                    else ids[flows[mask] % ids.shape[0]]
        # Forward per destination ring: a ring's state depends only on
        # the posts it receives, and those happen in chunk order here,
        # so drops and buffer addresses match the per-packet path.
        # Each packet lands on exactly one ring, so when nothing drops
        # and line counts are uniform the per-ring copy stages collapse
        # into one whole-chunk rank-6 stage — the per-packet line
        # placement is identical (one rank-6 segment per packet either
        # way), and a single identity-packet stage keeps the chunk on
        # VectorPlan's stage-template fast path.
        posts = []
        dropped = False
        for ring_id in range(ndest):
            where = np.nonzero(dest == ring_id)[0]
            if not where.shape[0]:
                continue
            ring = self._dest_rings[ring_id]
            out_addrs = ring.post_batch(sizes[where], flows[where],
                                        arrivals[where])
            accepted = out_addrs.shape[0]
            if accepted < where.shape[0]:
                self.output_drops += where.shape[0] - accepted
                dropped = True
            if accepted:
                self.forwarded += accepted
                posts.append((where[:accepted], out_addrs))
        c0 = int(nlines[0]) if k else 0
        if not dropped and posts and bool((nlines == c0).all()):
            merged = np.empty(k, dtype=np.int64)
            for where_acc, out_addrs in posts:
                merged[where_acc] = out_addrs
            plan.add_batch(merged, c0, pkts=pkts, rank=6, write=True,
                           mlp=BUFFER_MLP)
        else:
            for where_acc, out_addrs in posts:
                nl = nlines[where_acc]
                nl0 = int(nl[0])
                plan.add_batch(out_addrs,
                               nl0 if bool((nl == nl0).all()) else nl,
                               pkts=where_acc, rank=6, write=True,
                               mlp=BUFFER_MLP)
        return OVS_INSTRUCTIONS * k, fixed

    def _forward(self, plan, ring, where, sizes, flows, arrivals,
                 nlines) -> None:
        """Post one destination ring's packets and plan the copies."""
        out_addrs = ring.post_batch(sizes, flows, arrivals)
        accepted = out_addrs.shape[0]
        if accepted < where.shape[0]:
            self.output_drops += where.shape[0] - accepted
        if accepted:
            self.forwarded += accepted
            nl = nlines[:accepted]
            c0 = int(nl[0])
            plan.add_batch(out_addrs, c0 if bool((nl == c0).all()) else nl,
                           pkts=where[:accepted], rank=6, write=True,
                           mlp=BUFFER_MLP)

    def worst_cost_vec(self, sizes, nlines, miss_cycles):
        lookup = (2 + MEGAFLOW_PROBES) * miss_cycles + MEGAFLOW_CYCLES
        return OVS_CYCLES + lookup + nlines * miss_cycles / BUFFER_MLP

    # -- speculation support ---------------------------------------------
    # Beyond the base checkpoint, a speculative OVS chunk mutates the EMC
    # (journaled inside FlowTables) and the destination virtio rings:
    # cursors/counters are saved here, while the slot payloads written by
    # rolled-back posts sit beyond the restored ``_count`` and are
    # rewritten before they ever become readable.
    def _spec_state(self):
        self.tables.snapshot()
        return (self.forwarded, self.output_drops,
                tuple((r._head, r._rd, r._count, r.enqueued, r.dequeued,
                       r.dropped) for r in self._dest_rings))

    def _spec_restore(self, state) -> None:
        self.tables.rollback()
        self.forwarded, self.output_drops, ring_states = state
        for ring, s in zip(self._dest_rings, ring_states):
            (ring._head, ring._rd, ring._count, ring.enqueued,
             ring.dequeued, ring.dropped) = s

    def _spec_commit_extra(self) -> None:
        self.tables.commit()

    def transmit(self, port: CorePort, record: PacketRecord) -> None:
        """Forwarding replaces Tx; nothing leaves via the switch here."""

    def plan_transmit(self, plan: AccessPlan, record: PacketRecord,
                      pkt: int) -> None:
        """Forwarding replaces Tx (see :meth:`transmit`)."""

    def plan_transmit_chunk(self, plan: VectorPlan, pkts, sizes, addrs,
                            nlines) -> None:
        """Forwarding replaces Tx (see :meth:`transmit`)."""

    # -- reporting ---------------------------------------------------------
    def cycles_per_packet(self) -> float:
        """Busy CPP over the switch's lifetime (Fig. 8d companion metric)."""
        if self.packets_processed == 0:
            return 0.0
        return self.stats.busy_cycles / self.packets_processed

"""Traffic generation, packet helpers, and the RFC 2544 search."""

from .packet import MIN_PACKET, MTU_PACKET, PACKET_SIZE_LADDER, lines_per_packet
from .rfc2544 import SearchResult, TrialResult, find_zero_loss_rate
from .traffic import (Phase, PhasedTraffic, TrafficGen, TrafficSpec,
                      zipf_weights)

__all__ = [
    "MIN_PACKET", "MTU_PACKET", "PACKET_SIZE_LADDER", "Phase",
    "PhasedTraffic", "SearchResult", "TrafficGen", "TrafficSpec",
    "TrialResult", "find_zero_loss_rate", "lines_per_packet", "zipf_weights",
]

"""Traffic generation: rates, flow populations, and time-varying phases.

A :class:`TrafficSpec` describes one stream (rate, packet size, flow
population).  :class:`PhasedTraffic` sequences specs over simulated time,
which is how the Fig. 7/10/11 scenarios ("at t1 more traffic comes...")
are scripted.

Rates are expressed in *scaled* packets/second — the simulation engine
multiplies real rates by its ``time_scale`` before they reach here, so
this module is scale-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pci.nic import line_rate_pps


def zipf_weights(n: int, theta: float) -> "np.ndarray":
    """Normalized Zipf(theta) popularity weights over ``n`` items.

    ``theta = 0`` degenerates to uniform; YCSB's default is 0.99.
    """
    if n < 1:
        raise ValueError("need at least one item")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -theta if theta > 0 else np.ones(n)
    return weights / weights.sum()


@dataclass(frozen=True)
class TrafficSpec:
    """One traffic stream.

    ``pps``        packets per (scaled) second.
    ``packet_size`` wire bytes per packet.
    ``n_flows``    size of the flow population.
    ``zipf_theta`` flow-popularity skew (0 = uniform, single flow if n=1).
    ``burstiness`` >= 0; 0 gives a deterministic rate, larger values add
                   multiplicative noise around the mean (bursty traffic
                   being "ubiquitous in modern cloud services",
                   Sec. III-A).
    """

    pps: float
    packet_size: int = 64
    n_flows: int = 1
    zipf_theta: float = 0.0
    burstiness: float = 0.0

    def __post_init__(self) -> None:
        if self.pps < 0:
            raise ValueError("pps must be non-negative")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.n_flows < 1:
            raise ValueError("n_flows must be >= 1")

    @classmethod
    def line_rate(cls, gbps: float, packet_size: int, *, scale: float = 1.0,
                  n_flows: int = 1, zipf_theta: float = 0.0,
                  burstiness: float = 0.0) -> "TrafficSpec":
        """Spec for full line rate at ``gbps``, scaled by ``scale``."""
        return cls(pps=line_rate_pps(gbps, packet_size) * scale,
                   packet_size=packet_size, n_flows=n_flows,
                   zipf_theta=zipf_theta, burstiness=burstiness)

    def scaled(self, factor: float) -> "TrafficSpec":
        """The same stream at ``factor`` times the rate."""
        return TrafficSpec(pps=self.pps * factor, packet_size=self.packet_size,
                           n_flows=self.n_flows, zipf_theta=self.zipf_theta,
                           burstiness=self.burstiness)


@dataclass(frozen=True)
class TrafficQuantum:
    """One quantum's arrivals for a single stream, pre-sampled.

    ``offsets[sub] : offsets[sub + 1]`` slices ``flows``/``sizes`` down to
    the packets arriving in sub-step ``sub``; the engine hands each slice
    to :meth:`repro.pci.nic.Nic.dma_burst` whole, so traffic delivery does
    no per-packet Python work.
    """

    offsets: "np.ndarray"   # (subquanta + 1,) int64, cumulative counts
    flows: "np.ndarray"     # (total,) int64
    sizes: "np.ndarray"     # (total,) int64

    @property
    def total(self) -> int:
        return int(self.offsets[-1])

    def counts(self) -> "np.ndarray":
        return np.diff(self.offsets)


class TrafficGen:
    """Draws per-interval packet counts and flow ids for one spec."""

    def __init__(self, spec: TrafficSpec, rng: "np.random.Generator") -> None:
        self.spec = spec
        self._rng = rng
        self._carry = 0.0
        self._sampler = None
        self._build_sampler()

    def _build_sampler(self) -> None:
        if self.spec.n_flows > 1:
            # Cached-CDF sampler: draws are bit-identical to
            # ``rng.choice(n, size, p=weights)`` without re-accumulating
            # the weight vector on every draw.
            from ..workloads.streams import ZipfSampler
            self._sampler = ZipfSampler(
                zipf_weights(self.spec.n_flows, self.spec.zipf_theta))
        else:
            self._sampler = None

    def set_spec(self, spec: TrafficSpec) -> None:
        self.spec = spec
        self._build_sampler()

    def packets(self, dt: float) -> int:
        """Number of packets arriving in an interval of ``dt`` seconds."""
        mean = self.spec.pps * dt
        if self.spec.burstiness > 0:
            # Unbiased log-normal multiplier: E[factor] = 1, so bursts
            # redistribute arrivals in time without inflating the mean
            # offered rate.
            sigma = self.spec.burstiness
            factor = self._rng.lognormal(mean=-sigma * sigma / 2.0,
                                         sigma=sigma)
            mean *= factor
        mean += self._carry
        count = int(mean)
        self._carry = mean - count
        return count

    def flow_ids(self, count: int) -> "np.ndarray":
        """Flow ids for ``count`` packets, honouring the popularity skew."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self._sampler is None:
            return np.zeros(count, dtype=np.int64)
        return self._sampler.draw(self._rng, count)

    def sample_quantum(self, sub_dt: float, subquanta: int, start: float,
                       phased: "PhasedTraffic | None" = None) -> TrafficQuantum:
        """Sample one quantum of arrivals as a single array bundle.

        This *is* the per-quantum batch: one call covers every sub-step
        of the quantum and returns one bundle, so the traffic stage pays
        a handful of RNG/array launches per quantum rather than one set
        per sub-quantum (the engine's quantum loop calls this exactly
        once per tenant per quantum).

        Phase scripts are honoured at sub-step granularity exactly as the
        per-interval path would: the spec in force for each sub-step is
        ``phased.spec_at`` of that sub-step's start time.  Within a run of
        sub-steps sharing one spec, the burstiness multipliers are drawn
        as one batch and the flow ids as one draw — the carry chain is the
        same arithmetic as :meth:`packets`, applied per sub-step.
        """
        if phased is None:
            specs = [self.spec] * subquanta
        else:
            specs = []
            for sub in range(subquanta):
                spec = phased.spec_at(start + sub * sub_dt)
                if spec is not self.spec:
                    self.set_spec(spec)
                specs.append(self.spec)
        offsets = np.zeros(subquanta + 1, dtype=np.int64)
        flows_parts: "list[np.ndarray]" = []
        sizes_parts: "list[np.ndarray]" = []
        begin = 0
        while begin < subquanta:
            spec = specs[begin]
            end = begin + 1
            while end < subquanta and specs[end] is spec:
                end += 1
            nsub = end - begin
            base_mean = spec.pps * sub_dt
            if spec.burstiness > 0:
                sigma = spec.burstiness
                factors = self._rng.lognormal(mean=-sigma * sigma / 2.0,
                                              sigma=sigma, size=nsub)
            else:
                factors = None
            carry = self._carry
            segment_total = 0
            for sub in range(nsub):
                mean = base_mean
                if factors is not None:
                    mean *= factors[sub]
                mean += carry
                count = int(mean)
                carry = mean - count
                segment_total += count
                offsets[begin + sub + 1] = offsets[begin + sub] + count
            self._carry = carry
            if spec.n_flows > 1:
                flows_parts.append(self._sampler.draw(self._rng,
                                                      segment_total))
            else:
                flows_parts.append(np.zeros(segment_total, dtype=np.int64))
            sizes_parts.append(np.full(segment_total, spec.packet_size,
                                       dtype=np.int64))
            begin = end
        flows = (flows_parts[0] if len(flows_parts) == 1
                 else np.concatenate(flows_parts))
        sizes = (sizes_parts[0] if len(sizes_parts) == 1
                 else np.concatenate(sizes_parts))
        return TrafficQuantum(offsets=offsets, flows=flows, sizes=sizes)


@dataclass(frozen=True)
class Phase:
    """A traffic spec active from ``start`` (seconds) onward."""

    start: float
    spec: TrafficSpec


class PhasedTraffic:
    """Time-sequenced traffic: the spec in force changes at phase starts."""

    def __init__(self, phases: "list[Phase]") -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = sorted(phases, key=lambda p: p.start)
        if self.phases[0].start > 0:
            raise ValueError("first phase must start at t=0")

    def spec_at(self, now: float) -> TrafficSpec:
        current = self.phases[0].spec
        for phase in self.phases:
            if phase.start <= now:
                current = phase.spec
            else:
                break
        return current

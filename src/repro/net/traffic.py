"""Traffic generation: rates, flow populations, and time-varying phases.

A :class:`TrafficSpec` describes one stream (rate, packet size, flow
population).  :class:`PhasedTraffic` sequences specs over simulated time,
which is how the Fig. 7/10/11 scenarios ("at t1 more traffic comes...")
are scripted.

Rates are expressed in *scaled* packets/second — the simulation engine
multiplies real rates by its ``time_scale`` before they reach here, so
this module is scale-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pci.nic import line_rate_pps


def zipf_weights(n: int, theta: float) -> "np.ndarray":
    """Normalized Zipf(theta) popularity weights over ``n`` items.

    ``theta = 0`` degenerates to uniform; YCSB's default is 0.99.
    """
    if n < 1:
        raise ValueError("need at least one item")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -theta if theta > 0 else np.ones(n)
    return weights / weights.sum()


@dataclass(frozen=True)
class TrafficSpec:
    """One traffic stream.

    ``pps``        packets per (scaled) second.
    ``packet_size`` wire bytes per packet.
    ``n_flows``    size of the flow population.
    ``zipf_theta`` flow-popularity skew (0 = uniform, single flow if n=1).
    ``burstiness`` >= 0; 0 gives a deterministic rate, larger values add
                   multiplicative noise around the mean (bursty traffic
                   being "ubiquitous in modern cloud services",
                   Sec. III-A).
    """

    pps: float
    packet_size: int = 64
    n_flows: int = 1
    zipf_theta: float = 0.0
    burstiness: float = 0.0

    def __post_init__(self) -> None:
        if self.pps < 0:
            raise ValueError("pps must be non-negative")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.n_flows < 1:
            raise ValueError("n_flows must be >= 1")

    @classmethod
    def line_rate(cls, gbps: float, packet_size: int, *, scale: float = 1.0,
                  n_flows: int = 1, zipf_theta: float = 0.0,
                  burstiness: float = 0.0) -> "TrafficSpec":
        """Spec for full line rate at ``gbps``, scaled by ``scale``."""
        return cls(pps=line_rate_pps(gbps, packet_size) * scale,
                   packet_size=packet_size, n_flows=n_flows,
                   zipf_theta=zipf_theta, burstiness=burstiness)

    def scaled(self, factor: float) -> "TrafficSpec":
        """The same stream at ``factor`` times the rate."""
        return TrafficSpec(pps=self.pps * factor, packet_size=self.packet_size,
                           n_flows=self.n_flows, zipf_theta=self.zipf_theta,
                           burstiness=self.burstiness)


class TrafficGen:
    """Draws per-interval packet counts and flow ids for one spec."""

    def __init__(self, spec: TrafficSpec, rng: "np.random.Generator") -> None:
        self.spec = spec
        self._rng = rng
        self._carry = 0.0
        self._weights = (zipf_weights(spec.n_flows, spec.zipf_theta)
                         if spec.n_flows > 1 else None)

    def set_spec(self, spec: TrafficSpec) -> None:
        self.spec = spec
        self._weights = (zipf_weights(spec.n_flows, spec.zipf_theta)
                         if spec.n_flows > 1 else None)

    def packets(self, dt: float) -> int:
        """Number of packets arriving in an interval of ``dt`` seconds."""
        mean = self.spec.pps * dt
        if self.spec.burstiness > 0:
            # Unbiased log-normal multiplier: E[factor] = 1, so bursts
            # redistribute arrivals in time without inflating the mean
            # offered rate.
            sigma = self.spec.burstiness
            factor = self._rng.lognormal(mean=-sigma * sigma / 2.0,
                                         sigma=sigma)
            mean *= factor
        mean += self._carry
        count = int(mean)
        self._carry = mean - count
        return count

    def flow_ids(self, count: int) -> "np.ndarray":
        """Flow ids for ``count`` packets, honouring the popularity skew."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self._weights is None:
            return np.zeros(count, dtype=np.int64)
        return self._rng.choice(len(self._weights), size=count,
                                p=self._weights)


@dataclass(frozen=True)
class Phase:
    """A traffic spec active from ``start`` (seconds) onward."""

    start: float
    spec: TrafficSpec


class PhasedTraffic:
    """Time-sequenced traffic: the spec in force changes at phase starts."""

    def __init__(self, phases: "list[Phase]") -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = sorted(phases, key=lambda p: p.start)
        if self.phases[0].start > 0:
            raise ValueError("first phase must start at t=0")

    def spec_at(self, now: float) -> TrafficSpec:
        current = self.phases[0].spec
        for phase in self.phases:
            if phase.start <= now:
                current = phase.spec
            else:
                break
        return current

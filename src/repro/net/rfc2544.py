"""RFC 2544 zero-loss throughput search.

The paper's Fig. 3 measures "the maximum throughput when there is zero
packet drop" by sweeping offered load, as specified in RFC 2544.  This
module implements the standard binary search: each trial runs the device
under test at a candidate rate for a fixed window and reports whether
any packet was lost; the search converges on the highest loss-free rate.

The trial function is injected so the same search drives any simulated
forwarding setup (l3fwd in Fig. 3, but also the OVS path in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class TrialResult:
    """Outcome of offering traffic at one rate for the trial window."""

    offered_pps: float
    delivered_pps: float
    dropped: int

    @property
    def loss_free(self) -> bool:
        return self.dropped == 0


@dataclass(frozen=True)
class SearchResult:
    """Converged zero-loss rate plus the trial trace for inspection."""

    max_loss_free_pps: float
    trials: "tuple[TrialResult, ...]"

    @property
    def trial_count(self) -> int:
        return len(self.trials)


def find_zero_loss_rate(trial: "Callable[[float], TrialResult]",
                        max_pps: float, *, start_fraction: float = 0.01,
                        resolution: float = 0.02,
                        max_trials: int = 20) -> SearchResult:
    """Find the highest loss-free offered rate in packets/second.

    ``trial(rate)`` must run an independent measurement at ``rate`` and
    return a :class:`TrialResult`.

    The search is geometric-then-bisect: start at
    ``start_fraction * max_pps``, double while loss-free (capped at
    ``max_pps``), then bisect the bracketing interval.  Compared to
    bisecting down from line rate this resolves small capacities (a
    64-entry ring's limit can be two orders of magnitude below line
    rate) and spends its expensive high-rate trials only when the DUT
    can actually sustain them.  ``resolution`` is relative to the
    converged rate, not to ``max_pps``.
    """
    if max_pps <= 0:
        raise ValueError("max_pps must be positive")
    if not 0 < resolution < 1:
        raise ValueError("resolution must be in (0, 1)")
    if not 0 < start_fraction <= 1:
        raise ValueError("start_fraction must be in (0, 1]")
    trials: "list[TrialResult]" = []

    def run(rate: float) -> TrialResult:
        result = trial(rate)
        trials.append(result)
        return result

    # Phase 1: grow geometrically until the first lossy rate.
    rate = max_pps * start_fraction
    best = 0.0
    hi = max_pps
    while len(trials) < max_trials:
        result = run(rate)
        if result.loss_free:
            best = rate
            if rate >= max_pps:
                return SearchResult(max_pps, tuple(trials))
            rate = min(rate * 2.0, max_pps)
        else:
            hi = rate
            break
    # Phase 2: bisect [best, hi].
    lo = best
    while len(trials) < max_trials and (hi - lo) > resolution * max(hi, 1e-9):
        mid = (lo + hi) / 2.0
        if run(mid).loss_free:
            best = max(best, mid)
            lo = mid
        else:
            hi = mid
    return SearchResult(best, tuple(trials))

"""Packet-size constants and helpers shared across traffic and workloads."""

from __future__ import annotations

#: Minimum Ethernet frame (the paper's small-packet case).
MIN_PACKET = 64

#: MTU-sized frame (the paper's large-packet case, "1.5KB").
MTU_PACKET = 1500

#: The packet-size ladder used in Figs. 8 and 10 (64B doubled up to MTU).
PACKET_SIZE_LADDER = (64, 128, 256, 512, 1024, 1500)


def lines_per_packet(size: int, line_size: int = 64) -> int:
    """Cachelines touched when DMA-writing a packet of ``size`` bytes."""
    if size <= 0:
        raise ValueError("packet size must be positive")
    return -(-size // line_size)

"""Per-core performance counters (the CMT/perf side of RDT).

Each simulated core owns one monotonically increasing counter block; the
simulation engine credits instructions/cycles/LLC events as workloads
execute.  The pqos facade exposes snapshot/delta reads exactly the way
the real library does, so the IAT daemon's polling code is backend
agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreCounterBlock:
    """Monotonic counters for one core."""

    instructions: int = 0
    cycles: int = 0
    llc_references: int = 0
    llc_misses: int = 0

    def credit(self, *, instructions: int = 0, cycles: int = 0,
               llc_references: int = 0, llc_misses: int = 0) -> None:
        self.instructions += instructions
        self.cycles += cycles
        self.llc_references += llc_references
        self.llc_misses += llc_misses

    def snapshot(self) -> "CoreCounterBlock":
        return CoreCounterBlock(self.instructions, self.cycles,
                                self.llc_references, self.llc_misses)


@dataclass
class CounterFile:
    """All core counter blocks for one CPU package."""

    num_cores: int
    cores: "list[CoreCounterBlock]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.cores:
            self.cores = [CoreCounterBlock() for _ in range(self.num_cores)]

    def core(self, core_id: int) -> CoreCounterBlock:
        return self.cores[core_id]

    def aggregate(self, core_ids) -> CoreCounterBlock:
        """Sum of the blocks for ``core_ids`` (per-tenant aggregation)."""
        total = CoreCounterBlock()
        for core_id in core_ids:
            block = self.cores[core_id]
            total.credit(instructions=block.instructions,
                         cycles=block.cycles,
                         llc_references=block.llc_references,
                         llc_misses=block.llc_misses)
        return total

"""Symbolic names for the hardware events IAT consumes (paper Sec. IV-B).

Only four event families matter to IAT:

* per-core ``INSTRUCTIONS`` and ``CYCLES`` (for IPC),
* per-core ``LLC_REFERENCE`` and ``LLC_MISS`` (memory-access character),
* chip-wide ``DDIO_HIT`` (write update) and ``DDIO_MISS`` (write
  allocate), read from CHA uncore counters.

Keeping them as an enum lets the pqos facade expose a stable, typed
surface regardless of which backend (simulator or real MSRs) sits below.
"""

from __future__ import annotations

import enum


class Event(enum.Enum):
    """The hardware events IAT polls (Sec. IV-B)."""

    INSTRUCTIONS = "instructions"
    CYCLES = "cycles"
    LLC_REFERENCE = "llc_reference"
    LLC_MISS = "llc_miss"
    DDIO_HIT = "ddio_hit"
    DDIO_MISS = "ddio_miss"


#: Events collected per core (aggregated per tenant by the daemon).
CORE_EVENTS = (Event.INSTRUCTIONS, Event.CYCLES,
               Event.LLC_REFERENCE, Event.LLC_MISS)

#: Events collected once per CPU package.
UNCORE_EVENTS = (Event.DDIO_HIT, Event.DDIO_MISS)

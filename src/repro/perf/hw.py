"""Real-hardware control-plane backend (Skylake-SP MSR layout).

The IAT daemon only needs the method surface of
:class:`repro.perf.pqos.PqosLib`; this module provides :class:`HwPqos`,
an implementation that programs actual Intel RDT and uncore registers
through an :class:`~repro.perf.msr.MsrDevice` per core.  With
``LinuxMsr`` devices it drives a physical Skylake-SP box exactly like
the released iat-pqos artifact; with fake MSR devices it is fully unit
testable, which is how this repository exercises it (no Intel hardware
in CI — see DESIGN.md's substitution table).

Register map (Intel SDM vol. 4 and the Xeon Scalable uncore manual):

* ``IA32_PQR_ASSOC`` (0xC8F) — CLOS in bits 63:32, RMID in bits 9:0.
* ``IA32_L3_QOS_MASK_n`` (0xC90 + n) — the CBM of CLOS ``n``.
* ``IIO_LLC_WAYS`` (0xC8B) — the DDIO way mask (undocumented; from the
  iat-pqos fork).
* Fixed counters — ``IA32_FIXED_CTR0/1`` (0x309/0x30A) count retired
  instructions / core cycles once enabled via ``IA32_FIXED_CTR_CTRL``
  (0x38D) and ``IA32_PERF_GLOBAL_CTRL`` (0x38F).
* General PMU — ``IA32_PERFEVTSEL0/1`` (0x186/0x187) programmed with
  LONGEST_LAT_CACHE.REFERENCE (0x4F2E) / .MISS (0x412E), read from
  ``IA32_PMC0/1`` (0xC1/0xC2).
* CHA PMON — per-CHA blocks of MSRs starting at 0xE00 (stride 0x10):
  unit control, counter controls and counters.  The DDIO hit/miss
  events are TOR inserts filtered to ItoM from PCIe (the same events
  the paper's Sec. V uses); only CHA 0 is programmed and its counts are
  scaled by the slice count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.ddio import IIO_LLC_WAYS_MSR
from .msr import MsrDevice
from .pqos import MonitoringGroup, PollResult

# -- Intel RDT architectural MSRs -------------------------------------------
IA32_PQR_ASSOC = 0xC8F
IA32_L3_QOS_MASK_BASE = 0xC90

# -- Core PMU ----------------------------------------------------------------
IA32_PMC0 = 0xC1
IA32_PMC1 = 0xC2
IA32_PERFEVTSEL0 = 0x186
IA32_PERFEVTSEL1 = 0x187
IA32_FIXED_CTR0 = 0x309          # instructions retired
IA32_FIXED_CTR1 = 0x30A          # core cycles
IA32_FIXED_CTR_CTRL = 0x38D
IA32_PERF_GLOBAL_CTRL = 0x38F

#: PERFEVTSEL encoding: LONGEST_LAT_CACHE.REFERENCE / .MISS with
#: USR+OS+EN bits (0x43 in bits 16-23).
EVT_LLC_REFERENCE = 0x43_4F_2E
EVT_LLC_MISS = 0x43_41_2E

#: Enable fixed counters 0 and 1 for OS+USR.
FIXED_CTR_CTRL_ENABLE = 0x33
#: Global enable: PMC0, PMC1, FIXED0, FIXED1.
GLOBAL_CTRL_ENABLE = (1 << 0) | (1 << 1) | (1 << 32) | (1 << 33)

#: MBA delay-value MSRs (IA32_L2_QOS_EXT_BW_THRTL_n), one per CLOS.
IA32_MBA_THRTL_BASE = 0xD50

# -- CHA PMON (Skylake-SP uncore) ---------------------------------------------
CHA_MSR_BASE = 0xE00
CHA_MSR_STRIDE = 0x10
CHA_CTL0_OFFSET = 0x1            # counter-control registers
CHA_CTR0_OFFSET = 0x8            # counter registers
#: TOR_INSERTS opcode-filtered events standing in for DDIO hit/miss.
CHA_EVT_DDIO_HIT = 0x35_01
CHA_EVT_DDIO_MISS = 0x35_02


def cha_ctl_msr(cha: int, counter: int) -> int:
    return CHA_MSR_BASE + cha * CHA_MSR_STRIDE + CHA_CTL0_OFFSET + counter


def cha_ctr_msr(cha: int, counter: int) -> int:
    return CHA_MSR_BASE + cha * CHA_MSR_STRIDE + CHA_CTR0_OFFSET + counter


@dataclass
class HwPqos:
    """pqos-compatible control plane over per-core MSR devices.

    ``msr_of`` maps a core id to its MSR device (``LinuxMsr(core)`` on
    real hardware).  ``num_ways``/``num_slices`` describe the LLC (11 /
    18 on the paper's Xeon 6140).
    """

    msr_of: "dict[int, MsrDevice]"
    num_ways: int = 11
    num_slices: int = 18
    sample_cha: int = 0
    _groups: "dict[str, MonitoringGroup]" = field(default_factory=dict)
    _last_ddio: "tuple[int, int]" = (0, 0)
    _pmu_ready: "set[int]" = field(default_factory=set)
    _cha_ready: bool = False

    def _msr(self, core: int) -> MsrDevice:
        try:
            return self.msr_of[core]
        except KeyError as exc:
            raise ValueError(f"no MSR device for core {core}") from exc

    def _msr0(self) -> MsrDevice:
        return self._msr(min(self.msr_of))

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def _setup_core_pmu(self, core: int) -> None:
        if core in self._pmu_ready:
            return
        msr = self._msr(core)
        msr.write(IA32_PERFEVTSEL0, EVT_LLC_REFERENCE)
        msr.write(IA32_PERFEVTSEL1, EVT_LLC_MISS)
        msr.write(IA32_FIXED_CTR_CTRL, FIXED_CTR_CTRL_ENABLE)
        msr.write(IA32_PERF_GLOBAL_CTRL, GLOBAL_CTRL_ENABLE)
        self._pmu_ready.add(core)

    def _read_core_events(self, core: int) -> "dict[str, int]":
        msr = self._msr(core)
        return {"instructions": msr.read(IA32_FIXED_CTR0),
                "cycles": msr.read(IA32_FIXED_CTR1),
                "llc_references": msr.read(IA32_PMC0),
                "llc_misses": msr.read(IA32_PMC1)}

    def mon_start(self, name: str, cores) -> MonitoringGroup:
        cores = tuple(cores)
        if name in self._groups:
            raise ValueError(f"monitoring group {name!r} already exists")
        if not cores:
            raise ValueError("a monitoring group needs at least one core")
        for core in cores:
            self._setup_core_pmu(core)
        group = MonitoringGroup(name, cores)
        group.last = self._aggregate(cores)
        self._groups[name] = group
        return group

    def mon_stop(self, name: str) -> None:
        self._groups.pop(name, None)

    def _aggregate(self, cores) -> "dict":
        total = {"instructions": 0, "cycles": 0,
                 "llc_references": 0, "llc_misses": 0}
        for core in cores:
            values = self._read_core_events(core)
            for key in total:
                total[key] += values[key]
        return total

    def mon_poll(self, name: str) -> PollResult:
        group = self._groups[name]
        now = self._aggregate(group.cores)
        result = PollResult(
            instructions=now["instructions"] - group.last["instructions"],
            cycles=now["cycles"] - group.last["cycles"],
            llc_references=now["llc_references"]
            - group.last["llc_references"],
            llc_misses=now["llc_misses"] - group.last["llc_misses"])
        group.last = now
        return result

    def _setup_cha(self) -> None:
        if self._cha_ready:
            return
        msr = self._msr0()
        msr.write(cha_ctl_msr(self.sample_cha, 0), CHA_EVT_DDIO_HIT)
        msr.write(cha_ctl_msr(self.sample_cha, 1), CHA_EVT_DDIO_MISS)
        self._cha_ready = True

    def ddio_poll(self) -> "tuple[int, int]":
        """One-slice CHA sample scaled by the slice count (Sec. V)."""
        self._setup_cha()
        msr = self._msr0()
        hits = msr.read(cha_ctr_msr(self.sample_cha, 0)) * self.num_slices
        misses = msr.read(cha_ctr_msr(self.sample_cha, 1)) * self.num_slices
        delta = (hits - self._last_ddio[0], misses - self._last_ddio[1])
        self._last_ddio = (hits, misses)
        return delta

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc_set(self, cos_id: int, mask: int) -> None:
        if mask == 0 or mask >> self.num_ways:
            raise ValueError(f"CBM {mask:#x} invalid for "
                             f"{self.num_ways} ways")
        self._msr0().write(IA32_L3_QOS_MASK_BASE + cos_id, mask)

    def alloc_get(self, cos_id: int) -> int:
        return self._msr0().read(IA32_L3_QOS_MASK_BASE + cos_id)

    def assoc_set(self, core: int, cos_id: int) -> None:
        msr = self._msr(core)
        current = msr.read(IA32_PQR_ASSOC)
        msr.write(IA32_PQR_ASSOC,
                  (current & 0xFFFF_FFFF) | (cos_id << 32))

    def assoc_get(self, core: int) -> int:
        return self._msr(core).read(IA32_PQR_ASSOC) >> 32

    # ------------------------------------------------------------------
    # MBA (extension; see repro.mem.mba for the simulated counterpart)
    # ------------------------------------------------------------------
    def mba_set(self, cos_id: int, percent: int) -> None:
        if percent % 10 or not 0 <= percent <= 90:
            raise ValueError(f"throttle {percent} is not a valid MBA step")
        self._msr0().write(IA32_MBA_THRTL_BASE + cos_id, percent)

    def mba_get(self, cos_id: int) -> int:
        return self._msr0().read(IA32_MBA_THRTL_BASE + cos_id)

    # ------------------------------------------------------------------
    # DDIO
    # ------------------------------------------------------------------
    def ddio_get_mask(self) -> int:
        return self._msr0().read(IIO_LLC_WAYS_MSR)

    def ddio_set_mask(self, mask: int) -> None:
        self._msr0().write(IIO_LLC_WAYS_MSR, mask)

    def ddio_way_count(self) -> int:
        return bin(self.ddio_get_mask()).count("1")

    # ------------------------------------------------------------------
    def reset_cost(self) -> float:
        """Cost accounting is a simulator concern; real runs time
        themselves (the daemon records wall time anyway)."""
        return 0.0

"""CHA (uncore) counters for DDIO hit/miss, with one-slice sampling.

Modern Intel CPUs put one Caching and Home Agent in front of each LLC
slice.  To keep polling cheap, the paper reads the DDIO events from a
*single* slice's CHA and multiplies by the slice count, relying on the
address hash spreading traffic evenly (Sec. V, "Profiling and
monitoring").  We model exactly that: the simulator records each DDIO
transaction against its true slice, and :meth:`sample` reconstructs the
chip-wide totals from slice 0 — so the same (small) sampling error the
real daemon sees is present here too.  :meth:`exact` exposes ground
truth for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache.geometry import CacheGeometry


@dataclass
class DdioSample:
    """Chip-wide DDIO counts as reconstructed from one slice's CHA."""

    hits: int
    misses: int


@dataclass
class ChaCounters:
    """Per-slice DDIO hit/miss counters plus sampling logic."""

    geometry: CacheGeometry
    sample_slice: int = 0
    hits: "list[int]" = field(default_factory=list)
    misses: "list[int]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.hits:
            self.hits = [0] * self.geometry.slices
            self.misses = [0] * self.geometry.slices
        if not 0 <= self.sample_slice < self.geometry.slices:
            raise ValueError("sample_slice outside geometry")

    def record_ddio(self, addr: int, *, hit: bool) -> None:
        """Record one DDIO transaction against the slice owning ``addr``."""
        slice_id, _, _ = self.geometry.locate(addr)
        if hit:
            self.hits[slice_id] += 1
        else:
            self.misses[slice_id] += 1

    def record_ddio_batch(self, addrs, hit) -> None:
        """Record a vector of DDIO transactions (one bincount per kind).

        ``hit`` is a per-element boolean array aligned with ``addrs``.
        Equivalent to calling :meth:`record_ddio` per address.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return
        slices = self.geometry.slice_of_batch(addrs)
        hit = np.asarray(hit, dtype=bool)
        nslices = self.geometry.slices
        hit_counts = np.bincount(slices[hit], minlength=nslices)
        miss_counts = np.bincount(slices[~hit], minlength=nslices)
        for s in range(nslices):
            self.hits[s] += int(hit_counts[s])
            self.misses[s] += int(miss_counts[s])

    def sample(self) -> DdioSample:
        """Paper-style estimate: one slice's counts x slice count."""
        nslices = self.geometry.slices
        return DdioSample(hits=self.hits[self.sample_slice] * nslices,
                          misses=self.misses[self.sample_slice] * nslices)

    def exact(self) -> DdioSample:
        """Ground-truth totals across every slice (for tests/validation)."""
        return DdioSample(hits=sum(self.hits), misses=sum(self.misses))

    def sampling_error(self) -> float:
        """Relative error of the one-slice estimate vs. ground truth."""
        true = self.exact()
        est = self.sample()
        total = true.hits + true.misses
        if total == 0:
            return 0.0
        return abs((est.hits + est.misses) - total) / total

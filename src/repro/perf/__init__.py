"""Performance-counter models: core counters, CHA uncore, MSRs, pqos facade."""

from .counters import CoreCounterBlock, CounterFile
from .events import CORE_EVENTS, UNCORE_EVENTS, Event
from .hw import HwPqos
from .msr import LinuxMsr, MsrDevice, MsrError, SimMsr
from .pqos import (GROUP_POLL_COST_US, MSR_OP_COST_US, MonitoringGroup,
                   PollResult, PqosLib)
from .uncore import ChaCounters, DdioSample

__all__ = [
    "CORE_EVENTS", "ChaCounters", "CoreCounterBlock", "CounterFile",
    "DdioSample", "Event", "GROUP_POLL_COST_US", "HwPqos", "LinuxMsr",
    "MSR_OP_COST_US", "MonitoringGroup", "MsrDevice", "MsrError",
    "PollResult", "PqosLib", "SimMsr", "UNCORE_EVENTS",
]

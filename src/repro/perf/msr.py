"""Model-specific register access: the interface and two backends.

IAT manipulates DDIO through MSRs (paper Sec. V: "we write and read the
DDIO-related MSRs via the msr kernel module").  We keep that shape: the
daemon talks to an abstract :class:`MsrDevice`; the simulator provides
:class:`SimMsr` (writes to ``IIO_LLC_WAYS`` reprogram the simulated DDIO
mask), and :class:`LinuxMsr` is a skeleton of the real backend reading
``/dev/cpu/<n>/msr`` for completeness — it is not exercised in CI since
this machine has no Intel DDIO hardware.
"""

from __future__ import annotations

import os
import struct
from abc import ABC, abstractmethod

from ..cache.ddio import IIO_LLC_WAYS_MSR, DdioConfig


class MsrError(OSError):
    """Raised when an MSR access fails."""


class MsrDevice(ABC):
    """Minimal rdmsr/wrmsr surface."""

    @abstractmethod
    def read(self, register: int) -> int:
        """Read a 64-bit MSR value."""

    @abstractmethod
    def write(self, register: int, value: int) -> None:
        """Write a 64-bit MSR value."""


class SimMsr(MsrDevice):
    """Simulated MSR file backed by the platform's DDIO configuration.

    Only ``IIO_LLC_WAYS`` has side effects; other registers behave as
    plain 64-bit scratch storage, which is enough for the daemon and for
    tests.
    """

    def __init__(self, ddio: DdioConfig) -> None:
        self._ddio = ddio
        self._scratch: "dict[int, int]" = {}

    def read(self, register: int) -> int:
        if register == IIO_LLC_WAYS_MSR:
            return self._ddio.mask
        return self._scratch.get(register, 0)

    def write(self, register: int, value: int) -> None:
        if value < 0 or value >> 64:
            raise MsrError(f"value {value:#x} does not fit in 64 bits")
        if register == IIO_LLC_WAYS_MSR:
            self._ddio.set_mask(value)
        else:
            self._scratch[register] = value


class LinuxMsr(MsrDevice):
    """Real-hardware backend via the Linux ``msr`` kernel module.

    Provided so the daemon could drive an actual Skylake-SP box; requires
    root and ``modprobe msr``.  Untested in this repository's CI (no
    Intel hardware available) — see DESIGN.md's substitution table.
    """

    def __init__(self, cpu: int = 0) -> None:
        self.path = f"/dev/cpu/{cpu}/msr"
        if not os.path.exists(self.path):
            raise MsrError(f"{self.path} not present; is the msr module loaded?")

    def read(self, register: int) -> int:
        with open(self.path, "rb") as handle:
            handle.seek(register)
            data = handle.read(8)
        if len(data) != 8:
            raise MsrError(f"short read from MSR {register:#x}")
        return struct.unpack("<Q", data)[0]

    def write(self, register: int, value: int) -> None:
        with open(self.path, "wb") as handle:
            handle.seek(register)
            handle.write(struct.pack("<Q", value))

"""pqos-like facade: the only surface the IAT daemon talks to.

The released IAT artifact is a fork of Intel's ``pqos`` library extended
with DDIO monitoring/allocation (https://github.com/FAST-UIUC/iat-pqos).
This module mirrors that shape:

* monitoring groups over sets of cores (CMT-style), polled for
  instructions/cycles/LLC ref/LLC miss,
* CAT operations (program a CLOS mask, associate a core),
* DDIO way query/update via the MSR device, and
* chip-wide DDIO hit/miss polling via one CHA slice.

It also carries the *cost model* for Fig. 15: every counter read/write
on real hardware costs a ring-0 transition through the msr driver, so
the facade counts MSR operations per call and converts them to
microseconds.  The daemon reports both this modelled cost and its actual
wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.cat import CatController
from ..cache.ddio import IIO_LLC_WAYS_MSR
from .counters import CounterFile
from .events import Event
from .msr import MsrDevice
from .uncore import ChaCounters

#: Modelled cost of one MSR read/write from user space, microseconds.
#: Dominated by the context switch into the msr driver (paper Sec. VI-D).
MSR_OP_COST_US = 1.1

#: Extra fixed cost per monitoring group per poll (file descriptors,
#: bookkeeping); makes poll time grow with tenant count but sub-linearly
#: with cores, as in Fig. 15.
GROUP_POLL_COST_US = 2.0

#: MSR operations needed to read the four core events on one core.
MSR_OPS_PER_CORE_POLL = 4

#: MSR operations to read DDIO hit+miss from one CHA.
MSR_OPS_PER_UNCORE_POLL = 2


@dataclass
class MonitoringGroup:
    """A CMT monitoring group: a named set of cores with last-poll state."""

    name: str
    cores: "tuple[int, ...]"
    last: "dict[Event, int]" = field(default_factory=dict)


@dataclass
class PollResult:
    """Delta-based view of one group's activity since the previous poll."""

    instructions: int
    cycles: int
    llc_references: int
    llc_misses: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def miss_rate(self) -> float:
        if self.llc_references == 0:
            return 0.0
        return self.llc_misses / self.llc_references


class PqosLib:
    """Facade combining CMT monitoring, CAT allocation and DDIO control."""

    def __init__(self, counters: CounterFile, uncore: ChaCounters,
                 cat: CatController, msr: MsrDevice) -> None:
        self._counters = counters
        self._uncore = uncore
        self._cat = cat
        self._msr = msr
        self._groups: "dict[str, MonitoringGroup]" = {}
        self._last_ddio: "dict[Event, int]" = {Event.DDIO_HIT: 0,
                                               Event.DDIO_MISS: 0}
        #: Accumulated modelled cost (microseconds) since `reset_cost`.
        self.modelled_cost_us = 0.0

    # ------------------------------------------------------------------
    # Monitoring (CMT-style)
    # ------------------------------------------------------------------
    def mon_start(self, name: str, cores) -> MonitoringGroup:
        cores = tuple(cores)
        if name in self._groups:
            raise ValueError(f"monitoring group {name!r} already exists")
        if not cores:
            raise ValueError("a monitoring group needs at least one core")
        group = MonitoringGroup(name, cores)
        block = self._counters.aggregate(cores)
        group.last = {Event.INSTRUCTIONS: block.instructions,
                      Event.CYCLES: block.cycles,
                      Event.LLC_REFERENCE: block.llc_references,
                      Event.LLC_MISS: block.llc_misses}
        self._groups[name] = group
        return group

    def mon_stop(self, name: str) -> None:
        self._groups.pop(name, None)

    def mon_poll(self, name: str) -> PollResult:
        """Poll one group; values are deltas since the previous poll."""
        group = self._groups[name]
        self.modelled_cost_us += (GROUP_POLL_COST_US +
                                  len(group.cores) * MSR_OPS_PER_CORE_POLL
                                  * MSR_OP_COST_US)
        block = self._counters.aggregate(group.cores)
        now = {Event.INSTRUCTIONS: block.instructions,
               Event.CYCLES: block.cycles,
               Event.LLC_REFERENCE: block.llc_references,
               Event.LLC_MISS: block.llc_misses}
        result = PollResult(
            instructions=now[Event.INSTRUCTIONS] - group.last[Event.INSTRUCTIONS],
            cycles=now[Event.CYCLES] - group.last[Event.CYCLES],
            llc_references=now[Event.LLC_REFERENCE] - group.last[Event.LLC_REFERENCE],
            llc_misses=now[Event.LLC_MISS] - group.last[Event.LLC_MISS])
        group.last = now
        return result

    def ddio_poll(self) -> "tuple[int, int]":
        """Chip-wide (DDIO hit, DDIO miss) deltas since the previous poll.

        Reads one CHA slice and scales by the slice count, like the real
        daemon (Sec. V).
        """
        self.modelled_cost_us += MSR_OPS_PER_UNCORE_POLL * MSR_OP_COST_US
        sample = self._uncore.sample()
        hits = sample.hits - self._last_ddio[Event.DDIO_HIT]
        misses = sample.misses - self._last_ddio[Event.DDIO_MISS]
        self._last_ddio = {Event.DDIO_HIT: sample.hits,
                           Event.DDIO_MISS: sample.misses}
        return hits, misses

    # ------------------------------------------------------------------
    # Allocation (CAT-style)
    # ------------------------------------------------------------------
    def alloc_set(self, cos_id: int, mask: int) -> None:
        self.modelled_cost_us += MSR_OP_COST_US
        self._cat.set_mask(cos_id, mask)

    def alloc_get(self, cos_id: int) -> int:
        self.modelled_cost_us += MSR_OP_COST_US
        return self._cat.get_mask(cos_id)

    def assoc_set(self, core: int, cos_id: int) -> None:
        self.modelled_cost_us += MSR_OP_COST_US
        self._cat.associate(core, cos_id)

    def assoc_get(self, core: int) -> int:
        return self._cat.cos_of(core)

    # ------------------------------------------------------------------
    # DDIO control (the iat-pqos extension)
    # ------------------------------------------------------------------
    def ddio_get_mask(self) -> int:
        self.modelled_cost_us += MSR_OP_COST_US
        return self._msr.read(IIO_LLC_WAYS_MSR)

    def ddio_set_mask(self, mask: int) -> None:
        self.modelled_cost_us += MSR_OP_COST_US
        self._msr.write(IIO_LLC_WAYS_MSR, mask)

    def ddio_way_count(self) -> int:
        return bin(self.ddio_get_mask()).count("1")

    # ------------------------------------------------------------------
    @property
    def num_ways(self) -> int:
        return self._cat.num_ways

    def reset_cost(self) -> float:
        """Return and clear the accumulated modelled cost (microseconds)."""
        cost, self.modelled_cost_us = self.modelled_cost_us, 0.0
        return cost
